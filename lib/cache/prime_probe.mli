(** The Prime+Probe attack primitive (Osvik et al.), set-granular.

    The attacker owns an eviction buffer with lines mapping to every cache
    set.  [prime] fills the ways of a target set that the attacker's CAT
    class of service may allocate; [probe] times a reload of each primed
    line — a miss means the victim (or noise) evicted it, i.e. touched the
    set.  Under the paper's offensive use of Intel CAT the class is
    restricted to a single way, which makes one victim access evict the
    attacker's line deterministically and shields the set from other
    cores' traffic. *)

type t

val create :
  ?timing:Timing.t ->
  ?cos:int ->
  cache:Cache.t ->
  prng:Zipchannel_util.Prng.t ->
  unit ->
  t

val cos : t -> int

val prime : t -> set:int -> unit
(** Fill every CAT-allowed way of the global set with attacker lines. *)

val probe : t -> set:int -> int
(** Number of primed lines measured as evicted (misses).  Re-primes as a
    side effect, as real probe loops do. *)

val probe_hit : t -> set:int -> bool
(** [probe t ~set > 0]: did anything touch the set? *)

val eviction_lines : t -> set:int -> int array
(** The attacker's eviction-buffer lines for [set], one per CAT-allowed
    way — the address material {!prime}/{!probe} walk.  Computed once per
    set and memoized; callers monitoring a fixed set list (a page's 64
    lines, say) can fetch these once and replay them through
    {!prime_lines}/{!probe_lines}. *)

val prime_lines : t -> int array -> unit
(** [prime] over a precomputed {!eviction_lines} array. *)

val probe_lines : t -> int array -> int
(** [probe] over a precomputed {!eviction_lines} array. *)

type stats = {
  primes : int;  (** set-granular prime rounds *)
  probes : int;  (** set-granular probe rounds *)
  probe_evictions : int;  (** lines measured as evicted across probes *)
}

val stats : t -> stats

val observe_metrics : t -> unit
(** Publish {!stats} (plus the underlying {!Cache.stats}) into
    {!Zipchannel_obs.Obs.Metrics} under [prime_probe.*] / [cache.*].
    No-op while Obs is disabled. *)

val prime_sets : t -> sets:int list -> unit

val probe_sets : t -> sets:int list -> (int * int) list
(** Per-set eviction counts, in the order given. *)

type plan
(** A precompiled monitoring plan: the eviction buffers of a fixed set
    list laid out in one flat address array, so each window's
    prime/probe sweep is a single tight loop with no per-set memo
    lookups. *)

val plan : t -> sets:int array -> plan
(** Build the plan.  Sets are swept in the order given; results are
    identical to calling {!prime}/{!probe} per set in that order. *)

val plan_sets : plan -> int array
(** The monitored sets, in sweep order. *)

val prime_plan : t -> plan -> unit
(** {!prime} every planned set, in order. *)

val probe_plan : t -> plan -> evicted:int array -> unit
(** {!probe} every planned set in order; [evicted.(k)] receives the
    eviction count of the k-th planned set.  The caller provides (and
    reuses) the result buffer.
    @raise Invalid_argument if [evicted] is shorter than the plan. *)
