open Zipchannel_util
module Cache = Zipchannel_cache.Cache
module Timing = Zipchannel_cache.Timing
module Page_table = Zipchannel_sgx.Page_table
module Enclave = Zipchannel_sgx.Enclave

type config = Attack_config.t = {
  use_cat : bool;
  use_frame_selection : bool;
  frame_candidates : int;
  background_noise : bool;
  cache_config : Cache.config;
  timing : Timing.t;
  noise_config : Noise.config;
  seed : int;
}

let default_config = Attack_config.default

type result = {
  recovered : bytes;
  byte_accuracy : float;
  bit_accuracy : float;
  observations : int list array;
  lost_readings : int;
  faults : int;
  frame_remaps : int;
}

type state = {
  channel : Page_channel.t;
  page_table : Page_table.t;
  enclave : Enclave.t;
  layout : Zipchannel_trace.Layout.t;
  mutable faults : int;
}

let region_range st name =
  let r = Zipchannel_trace.Layout.region st.layout name in
  (r.Zipchannel_trace.Layout.base, r.Zipchannel_trace.Layout.size)

let protect st name =
  let addr, size = region_range st name in
  Page_table.protect_range st.page_table ~addr ~size

let unprotect st name =
  let addr, size = region_range st name in
  Page_table.unprotect_range st.page_table ~addr ~size

let expect_fault st =
  match Enclave.run_to_fault st.enclave with
  | Enclave.Fault f ->
      st.faults <- st.faults + 1;
      Some f
  | Enclave.Done -> None
  | Enclave.Executed -> assert false

module Obs = Zipchannel_obs.Obs

let m_bytes = Obs.Metrics.counter "sgx.bytes"
let m_faults = Obs.Metrics.counter "sgx.faults"
let m_faults_quadrant = Obs.Metrics.counter "sgx.faults.quadrant"
let m_faults_block = Obs.Metrics.counter "sgx.faults.block"
let m_faults_ftab = Obs.Metrics.counter "sgx.faults.ftab"
let m_lost = Obs.Metrics.counter "sgx.lost_readings"
let h_candidates = Obs.Metrics.histogram "sgx.candidates_per_byte"

let run ?(config = default_config) input =
  Obs.with_span "sgx.attack"
    ~attrs:[ ("input_bytes", string_of_int (Bytes.length input)) ]
  @@ fun () ->
  let n = Bytes.length input in
  let prng = Prng.create ~seed:config.seed () in
  let cache = Cache.create config.cache_config in
  Page_channel.setup_cat ~config cache;
  let page_table = Page_table.create () in
  let enclave =
    Enclave.create ~cos:0 ~program:(Victim.program input) ~page_table ~cache ()
  in
  let channel = Page_channel.create ~config ~cache ~page_table ~prng in
  let st =
    { channel; page_table; enclave; layout = Victim.layout ~n; faults = 0 }
  in
  let observations = Array.make (max 1 n) [] in
  let progress = Obs.Progress.create ~total:n ~label:"sgx-attack" () in
  if n > 0 then begin
    protect st "quadrant";
    (* S0 of the first iteration: the quadrant store faults. *)
    let fault = expect_fault st in
    assert (fault <> None);
    Obs.Metrics.incr m_faults_quadrant;
    let finished = ref false in
    let k = ref 0 in
    while not !finished && !k < n do
      (* S0 -> S1: restore quadrant, revoke block. *)
      Noise.on_transition (Page_channel.noise st.channel);
      unprotect st "quadrant";
      protect st "block";
      (match expect_fault st with
      | Some _ -> Obs.Metrics.incr m_faults_block
      | None -> finished := true);
      (* S1 -> S2: restore block, revoke ftab. *)
      Noise.on_transition (Page_channel.noise st.channel);
      unprotect st "block";
      protect st "ftab";
      let vpage =
        match expect_fault st with
        | Some f ->
            Obs.Metrics.incr m_faults_ftab;
            Page_table.vpage_of f.Enclave.page_addr
        | None ->
            finished := true;
            0
      in
      if not !finished then begin
        (* S2: pick a quiet frame for the faulting page, then prime. *)
        Page_channel.prime_page st.channel ~vpage;
        (* S2 -> S3: restore ftab, revoke quadrant for the next round. *)
        Noise.on_transition (Page_channel.noise st.channel);
        unprotect st "ftab";
        protect st "quadrant";
        (* S3 -> S4: the victim performs the single ftab access, then
           faults on the next quadrant store (or finishes). *)
        (match expect_fault st with
        | Some _ -> Obs.Metrics.incr m_faults_quadrant
        | None -> finished := true);
        if config.background_noise then
          Noise.background (Page_channel.noise st.channel) ~cos:1;
        let candidates = Page_channel.probe_page st.channel ~vpage in
        Obs.Metrics.observe h_candidates (List.length candidates);
        observations.(!k) <-
          List.map
            (fun line -> (vpage lsl Page_table.page_bits) lor (line lsl 6))
            candidates;
        incr k;
        Obs.Progress.step progress
      end
    done
  end;
  Obs.Progress.finish progress;
  let observations = if n = 0 then [||] else observations in
  let recovered =
    if n = 0 then Bytes.empty
    else
      Recovery.bzip2_recover_candidates ~ftab_base:Victim.ftab_base ~n
        observations
  in
  let lost =
    Array.fold_left (fun a o -> if o = [] then a + 1 else a) 0 observations
  in
  Obs.Metrics.add m_bytes n;
  Obs.Metrics.add m_faults st.faults;
  Obs.Metrics.add m_lost lost;
  Page_channel.observe_metrics st.channel;
  {
    recovered;
    byte_accuracy = Stats.fraction_equal recovered input;
    bit_accuracy = Stats.bit_accuracy recovered input;
    observations;
    lost_readings = lost;
    faults = st.faults;
    frame_remaps = Page_channel.frame_remaps st.channel;
  }
