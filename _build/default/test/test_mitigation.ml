open Zipchannel_util
open Zipchannel_mitigation
module Block_sort = Zipchannel_compress.Block_sort

let prng () = Prng.create ~seed:0x317 ()

let test_histogram_correct () =
  let t = prng () in
  for _ = 1 to 5 do
    let input = Prng.bytes t 200 in
    Alcotest.(check bool) "matches plain histogram" true
      (Oblivious.histogram input = Block_sort.histogram input)
  done

let test_histogram_empty () =
  let h = Oblivious.histogram Bytes.empty in
  Alcotest.(check int) "all zero" 0 (Array.fold_left ( + ) 0 h)

let test_trace_is_constant () =
  let t = prng () in
  let inputs = List.init 4 (fun _ -> Prng.bytes t 150) in
  Alcotest.(check bool) "input independent" true
    (Leak_check.constant_trace Oblivious.histogram_line_trace ~inputs)

let test_trace_shape () =
  let t = prng () in
  let input = Prng.bytes t 10 in
  let trace = Oblivious.histogram_line_trace input in
  let lines = Oblivious.lines_of_table ~entries:Block_sort.ftab_size ~entry_size:4 in
  Alcotest.(check int) "every line per iteration" (10 * lines)
    (Array.length trace);
  (* Each iteration sweeps lines 0..lines-1 in order. *)
  Array.iteri
    (fun k line -> Alcotest.(check int) "sweep order" (k mod lines) line)
    trace

let test_plain_trace_leaks () =
  let a = Bytes.of_string "aaaaaaaaaa" and b = Bytes.of_string "zzzzzzzzzz" in
  Alcotest.(check bool) "plain loop is input dependent" false
    (Leak_check.constant_trace Leak_check.plain_histogram_line_trace
       ~inputs:[ a; b ])

let test_leak_check_validation () =
  Alcotest.check_raises "needs two inputs"
    (Invalid_argument "Leak_check.constant_trace: need >= 2 inputs") (fun () ->
      ignore
        (Leak_check.constant_trace Leak_check.plain_histogram_line_trace
           ~inputs:[ Bytes.empty ]))

let test_first_difference () =
  Alcotest.(check (option int)) "same" None
    (Leak_check.first_difference [| 1; 2 |] [| 1; 2 |]);
  Alcotest.(check (option int)) "differs" (Some 1)
    (Leak_check.first_difference [| 1; 2 |] [| 1; 3 |]);
  Alcotest.(check (option int)) "length" (Some 2)
    (Leak_check.first_difference [| 1; 2 |] [| 1; 2; 3 |])

let test_oblivious_lookup () =
  let table = Array.init 100 (fun i -> i * 7) in
  for i = 0 to 99 do
    Alcotest.(check int) "lookup value" (i * 7) (Oblivious.lookup ~table i)
  done;
  Alcotest.check_raises "bounds" (Invalid_argument "Oblivious.lookup: index")
    (fun () -> ignore (Oblivious.lookup ~table 100))

let test_store_roundtrip () =
  let t = prng () in
  let data = Prng.bytes t 500 in
  Alcotest.(check bool) "roundtrip" true
    (Bytes.equal data (Oblivious.store_unpack (Oblivious.store_pack data)));
  Alcotest.(check bool) "empty" true
    (Bytes.equal Bytes.empty (Oblivious.store_unpack (Oblivious.store_pack Bytes.empty)))

let test_store_rejects_garbage () =
  Alcotest.check_raises "bad magic"
    (Failure "Oblivious.store_unpack: bad magic") (fun () ->
      ignore (Oblivious.store_unpack (Bytes.of_string "XXXXXXXXXX")))

let qcheck_oblivious_histogram =
  QCheck.Test.make ~name:"oblivious histogram equals plain" ~count:30
    QCheck.(string_of_size QCheck.Gen.(0 -- 120))
    (fun s ->
      let b = Bytes.of_string s in
      Oblivious.histogram b = Block_sort.histogram b)

let qcheck_store =
  QCheck.Test.make ~name:"store container roundtrip" ~count:100
    QCheck.(string_of_size QCheck.Gen.(0 -- 500))
    (fun s ->
      let b = Bytes.of_string s in
      Bytes.equal b (Oblivious.store_unpack (Oblivious.store_pack b)))

let suite =
  ( "mitigation",
    [
      Alcotest.test_case "histogram correct" `Quick test_histogram_correct;
      Alcotest.test_case "histogram empty" `Quick test_histogram_empty;
      Alcotest.test_case "trace constant" `Quick test_trace_is_constant;
      Alcotest.test_case "trace shape" `Quick test_trace_shape;
      Alcotest.test_case "plain trace leaks" `Quick test_plain_trace_leaks;
      Alcotest.test_case "leak check validation" `Quick test_leak_check_validation;
      Alcotest.test_case "first difference" `Quick test_first_difference;
      Alcotest.test_case "oblivious lookup" `Quick test_oblivious_lookup;
      Alcotest.test_case "store roundtrip" `Quick test_store_roundtrip;
      Alcotest.test_case "store rejects garbage" `Quick test_store_rejects_garbage;
      QCheck_alcotest.to_alcotest qcheck_oblivious_histogram;
      QCheck_alcotest.to_alcotest qcheck_store;
    ] )
