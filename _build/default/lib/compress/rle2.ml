let runa = 0
let runb = 1
let eob = 257
let alphabet_size = 258

(* A zero-run of length [n >= 1] is written as the bijective base-2 digits
   of [n], least significant first, with digit values 1 -> RUNA, 2 -> RUNB.
   Decoding sums digit * 2^position. *)
let encode symbols =
  let out = ref [] in
  let push s = out := s :: !out in
  let flush_run n =
    let n = ref n in
    while !n > 0 do
      if (!n - 1) land 1 = 0 then push runa else push runb;
      n := (!n - 1) asr 1
    done
  in
  let run = ref 0 in
  Array.iter
    (fun s ->
      if s = 0 then incr run
      else begin
        flush_run !run;
        run := 0;
        push (s + 1)
      end)
    symbols;
  flush_run !run;
  push eob;
  Array.of_list (List.rev !out)

let decode symbols =
  let out = ref [] in
  let run_value = ref 0 and run_weight = ref 1 in
  let flush_run () =
    for _ = 1 to !run_value do out := 0 :: !out done;
    run_value := 0;
    run_weight := 1
  in
  let finished = ref false in
  Array.iter
    (fun s ->
      if !finished then failwith "Rle2.decode: data after EOB";
      if s = runa || s = runb then begin
        run_value := !run_value + ((if s = runa then 1 else 2) * !run_weight);
        run_weight := !run_weight * 2
      end
      else if s = eob then begin
        flush_run ();
        finished := true
      end
      else if s >= 2 && s <= 256 then begin
        flush_run ();
        out := (s - 1) :: !out
      end
      else failwith "Rle2.decode: symbol out of range")
    symbols;
  if not !finished then failwith "Rle2.decode: missing EOB";
  Array.of_list (List.rev !out)
