(** Process-wide observability: metrics, span tracing, progress lines.

    Every hot layer of the reproduction (compression kernels, the taint
    engine, the cache/SGX model, recovery, the classifier) reports into
    this module.  The design constraint is the same one the kernels live
    under: telemetry must never change an experiment's output.  All
    reporting is therefore {e side-band} — nothing is printed to the
    experiment formatters — and near-free when disabled: every entry
    point is one atomic load and a predictable branch.

    Domain-safety: counters and histograms are sharded per domain (shard
    index = domain id mod shard count, each shard an [Atomic.t]) and
    merged on read, so instrumented code running under
    {!Zipchannel_parallel.Pool} needs no locks and [?jobs] stays
    byte-identical. *)

val enabled : unit -> bool
(** Are metrics being recorded?  Guards any instrumentation whose
    {e argument computation} is itself costly (e.g. walking a token list
    to fill a histogram). *)

val set_enabled : bool -> unit
(** Turn metric recording on or off (default: off). *)

val now_ns : unit -> int
(** Monotonic clock, nanoseconds (CLOCK_MONOTONIC via the bechamel
    stub).  Only meaningful as a difference. *)

module Metrics : sig
  type counter
  type gauge
  type histogram

  val counter : string -> counter
  (** Register (or fetch) the counter named [name].  Call at module
      initialisation and keep the handle; registration takes a lock. *)

  val incr : counter -> unit
  val add : counter -> int -> unit
  (** No-ops while {!enabled} is false. *)

  val counter_value : counter -> int
  (** Sum over all domain shards. *)

  val gauge : string -> gauge

  val set_gauge : gauge -> float -> unit
  (** Last write wins (across domains, in no particular order).  No-op
      while disabled. *)

  val gauge_value : gauge -> float

  val histogram : string -> histogram

  val observe : histogram -> int -> unit
  (** Record a sample into its log2 bucket (bucket [b] holds values [v]
      with [2^(b-1) <= v < 2^b]; bucket 0 holds [v <= 0]).  No-op while
      disabled. *)

  type histogram_snapshot = {
    count : int;
    sum : int;
    buckets : (int * int) list;  (** (log2 bucket, count), sparse, sorted *)
  }

  type snapshot = {
    counters : (string * int) list;
    gauges : (string * float) list;
    histograms : (string * histogram_snapshot) list;
  }
  (** All lists sorted by metric name, zero-valued entries dropped —
      a deterministic function of the recorded values. *)

  val snapshot : unit -> snapshot

  val reset : unit -> unit
  (** Zero every registered metric (handles stay valid). *)

  val delta : before:snapshot -> after:snapshot -> snapshot
  (** Counter/histogram growth between two snapshots; gauges keep their
      [after] value and are dropped when unchanged.  "Unchanged" compares
      with {!Float.compare}: a gauge rewritten to the value it already had
      between the snapshots — including NaN — does not appear. *)

  val is_empty : snapshot -> bool

  val bucket_midpoint : int -> float
  (** Midpoint estimate for a log2 bucket's value range: 1 for bucket 0
      (which holds v <= 1), [1.5 *. 2.^(b-1)] for bucket [b >= 1]
      (which holds [2^(b-1) < v <= 2^b]). *)

  val approx_quantile : histogram_snapshot -> float -> float
  (** [approx_quantile hs q] estimates the [q]-quantile ([0. <= q <= 1.])
      of the recorded samples as the midpoint of the log2 bucket holding
      that rank (bucket 0 estimates 1, bucket [b >= 1] estimates
      [1.5 *. 2.^(b-1)]).  0 for an empty histogram. *)

  val pp_snapshot : Format.formatter -> snapshot -> unit
  (** Human-readable [name value] table; histogram rows include
      approximate p50/p95 ({!approx_quantile} midpoint estimates). *)

  val snapshot_to_json : snapshot -> string
  (** One JSON object: [{"counters": {...}, "gauges": {...},
      "histograms": {name: {"count": .., "sum": .., "buckets": {..}}}}]. *)

  val flat_pairs : snapshot -> (string * float) list
  (** Snapshot flattened to numeric pairs (histograms become
      [name.count]/[name.sum]), for embedding in bench JSON. *)
end

module Prof : sig
  (** Publication plane for the side-band sampling profiler
      ({!Zipchannel_obs_prof.Obs_prof}).  When publishing is on,
      {!with_span} additionally writes the current span {e path}
      ("outer;inner") into this domain's atomic slot on every span
      push/pop — one [Atomic.set] per transition, no locks — so a ticker
      thread can sample all slots at any rate without perturbing the
      instrumented code.  With publishing off the cost added to
      {!with_span} is one atomic load. *)

  val set_publishing : bool -> unit
  (** Turn slot publication on or off (default: off).  Turning it off
      clears every slot. *)

  val publishing : unit -> bool

  val slot_count : int
  (** Number of slots; domains alias into them exactly like the metric
      shards (domain id mod slot count). *)

  val slot : unit -> int
  (** The calling domain's slot index. *)

  val current_paths : unit -> string array
  (** One entry per slot: the ";"-joined span path last published by a
      domain mapping there, or [""] when that domain is outside any
      span.  This is what the sampler reads each tick. *)

  val current_path : unit -> string
  (** The calling domain's own slot (tests and single-domain callers). *)
end

module Trace : sig
  type span_event = {
    phase : [ `Begin | `End ];
    name : string;
    domain : int;  (** emitting domain's id *)
    depth : int;  (** per-domain nesting depth of this span *)
    ts_ns : int;  (** monotonic timestamp of the event *)
    dur_ns : int;  (** span duration; 0 on [`Begin] events *)
    attrs : (string * string) list;
  }
  (** One span begin/end event, as delivered to a [Custom] sink — the
      in-memory form of one JSONL trace line. *)

  type sink =
    | Null  (** discard spans (the default) *)
    | Stderr  (** one indented human-readable line per completed span *)
    | Jsonl of out_channel  (** one JSON object per span begin/end event *)
    | Custom of (span_event -> unit)
        (** deliver each event to a callback (serialised under the
            emission lock, so collecting sinks need no locking of their
            own; the callback must not call {!with_span}).  This is how
            {!Zipchannel_obs_export}'s OTLP sink attaches without a
            dependency cycle. *)

  val set_sink : sink -> unit
  val sink : unit -> sink
  val active : unit -> bool

  val jsonl_of_event : span_event -> string
  (** The exact JSONL line the [Jsonl] sink writes for this event (no
      trailing newline) — lets a [Custom] sink tee the JSONL stream. *)

  val stderr_line_of_event : span_event -> string option
  (** The human-readable line the [Stderr] sink prints — [Some] on end
      events, [None] on begin events. *)
end

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] and, when a sink is active, emits a
    begin and an end event carrying the monotonic timestamp, duration,
    domain id and per-domain nesting depth.  Spans nest strictly within
    a domain (the end event is emitted even when [f] raises); spans of
    different domains interleave in the JSONL stream and are
    distinguished by their [domain] field.  With the [Null] sink the
    cost is one atomic load. *)

module Progress : sig
  (** Rate-limited one-line progress reports on stderr, for long attacks
      and experiment sweeps ([--progress]).  Disabled by default; every
      [step] is one atomic load when off. *)

  val set_enabled : bool -> unit
  val enabled : unit -> bool

  type style =
    | Plain  (** one full line per report — greppable logs, [NO_COLOR],
                 non-tty stderr *)
    | Ansi  (** carriage-return + erase-line rewriting of a single
                status line (interactive terminals) *)

  val set_style : style -> unit
  (** Default: [Plain].  CLIs should select [Ansi] only when stderr is a
      tty and [NO_COLOR] is unset. *)

  val style : unit -> style

  val styled_line : style:style -> string -> string
  (** The exact bytes written for one progress report of [line] under
      [style] (exposed for tests): [Plain] appends a newline, [Ansi]
      prefixes ["\r\x1b[2K"] with no newline. *)

  type t

  val create : ?total:int -> ?interval_ns:int -> label:string -> unit -> t
  (** [interval_ns] is the minimum gap between printed lines (default
      500 ms; 0 prints every step).  A [t] is single-domain.  When
      [total] is known, printed lines carry an ETA extrapolated from the
      monotonic clock: [[label] k/total (xx.x%) ~12s]. *)

  val render :
    label:string -> count:int -> total:int option -> elapsed_ns:int -> string
  (** The line {!step}/{!finish} print, as a pure function of the
      progress state (exposed for tests).  The ETA suffix appears only
      when [total] is known, [0 < count < total], and [elapsed_ns > 0];
      it is printed with one decimal under 10 s and as whole seconds
      above. *)

  val step : ?delta:int -> t -> unit

  val finish : t -> unit
  (** Print the final count unconditionally (when enabled). *)
end
