module Writer = struct
  type t = {
    buf : Buffer.t;
    mutable acc : int; (* pending bits, MSB side of current byte first *)
    mutable nbits : int; (* number of pending bits, 0..7 *)
  }

  let create () = { buf = Buffer.create 256; acc = 0; nbits = 0 }

  let add_bit t b =
    t.acc <- (t.acc lsl 1) lor (if b then 1 else 0);
    t.nbits <- t.nbits + 1;
    if t.nbits = 8 then begin
      Buffer.add_char t.buf (Char.chr t.acc);
      t.acc <- 0;
      t.nbits <- 0
    end

  let add_bits_msb t ~value ~count =
    if count < 0 || count > 30 then invalid_arg "Bitio.add_bits_msb: count";
    if value lsr count <> 0 then invalid_arg "Bitio.add_bits_msb: value too wide";
    for i = count - 1 downto 0 do
      add_bit t ((value lsr i) land 1 = 1)
    done

  let add_bits_lsb t ~value ~count =
    if count < 0 || count > 30 then invalid_arg "Bitio.add_bits_lsb: count";
    if value lsr count <> 0 then invalid_arg "Bitio.add_bits_lsb: value too wide";
    for i = 0 to count - 1 do
      add_bit t ((value lsr i) land 1 = 1)
    done

  let align_byte t = while t.nbits <> 0 do add_bit t false done

  let bit_length t = (8 * Buffer.length t.buf) + t.nbits

  let to_bytes t =
    if t.nbits = 0 then Buffer.to_bytes t.buf
    else begin
      let b = Buffer.create (Buffer.length t.buf + 1) in
      Buffer.add_buffer b t.buf;
      Buffer.add_char b (Char.chr (t.acc lsl (8 - t.nbits)));
      Buffer.to_bytes b
    end
end

module Lsb_writer = struct
  type t = {
    buf : Buffer.t;
    mutable acc : int; (* pending bits, bit 0 = next stream position *)
    mutable nbits : int;
  }

  let create () = { buf = Buffer.create 256; acc = 0; nbits = 0 }

  let flush_bytes t =
    while t.nbits >= 8 do
      Buffer.add_char t.buf (Char.chr (t.acc land 0xff));
      t.acc <- t.acc lsr 8;
      t.nbits <- t.nbits - 8
    done

  let add_bits t ~value ~count =
    if count < 0 || count > 24 then invalid_arg "Bitio.Lsb_writer.add_bits: count";
    if value lsr count <> 0 then
      invalid_arg "Bitio.Lsb_writer.add_bits: value too wide";
    t.acc <- t.acc lor (value lsl t.nbits);
    t.nbits <- t.nbits + count;
    flush_bytes t

  let add_huffman t ~code ~length =
    (* RFC 1951: Huffman codes are packed most significant bit first, so
       reverse before the LSB-first append. *)
    let rev = ref 0 in
    for i = 0 to length - 1 do
      rev := (!rev lsl 1) lor ((code lsr i) land 1)
    done;
    add_bits t ~value:!rev ~count:length

  let align_byte t =
    if t.nbits > 0 then begin
      Buffer.add_char t.buf (Char.chr (t.acc land 0xff));
      t.acc <- 0;
      t.nbits <- 0
    end

  let to_bytes t =
    if t.nbits = 0 then Buffer.to_bytes t.buf
    else begin
      let b = Buffer.create (Buffer.length t.buf + 1) in
      Buffer.add_buffer b t.buf;
      Buffer.add_char b (Char.chr (t.acc land 0xff));
      Buffer.to_bytes b
    end
end

module Lsb_reader = struct
  type t = { data : bytes; mutable pos : int }

  exception Out_of_bits

  let create ?(start = 0) data = { data; pos = 8 * start }

  let total_bits t = 8 * Bytes.length t.data

  let read_bit t =
    if t.pos >= total_bits t then raise Out_of_bits;
    let byte = Char.code (Bytes.get t.data (t.pos lsr 3)) in
    let bit = (byte lsr (t.pos land 7)) land 1 in
    t.pos <- t.pos + 1;
    bit = 1

  let read_bits t count =
    if count < 0 || count > 24 then invalid_arg "Bitio.Lsb_reader.read_bits";
    let v = ref 0 in
    for i = 0 to count - 1 do
      if read_bit t then v := !v lor (1 lsl i)
    done;
    !v

  let align_byte t = if t.pos land 7 <> 0 then t.pos <- (t.pos lor 7) + 1

  let byte_position t = t.pos lsr 3

  let bits_remaining t = max 0 (total_bits t - t.pos)
end

module Reader = struct
  type t = { data : bytes; mutable pos : int (* absolute bit position *) }

  exception Out_of_bits

  let create ?(start = 0) data = { data; pos = 8 * start }

  let total_bits t = 8 * Bytes.length t.data

  let read_bit t =
    if t.pos >= total_bits t then raise Out_of_bits;
    let byte = Char.code (Bytes.get t.data (t.pos lsr 3)) in
    let bit = (byte lsr (7 - (t.pos land 7))) land 1 in
    t.pos <- t.pos + 1;
    bit = 1

  let read_bits_msb t count =
    if count < 0 || count > 30 then invalid_arg "Bitio.read_bits_msb: count";
    let v = ref 0 in
    for _ = 1 to count do
      v := (!v lsl 1) lor (if read_bit t then 1 else 0)
    done;
    !v

  let read_bits_lsb t count =
    if count < 0 || count > 30 then invalid_arg "Bitio.read_bits_lsb: count";
    let v = ref 0 in
    for i = 0 to count - 1 do
      if read_bit t then v := !v lor (1 lsl i)
    done;
    !v

  let align_byte t = if t.pos land 7 <> 0 then t.pos <- (t.pos lor 7) + 1

  let bits_remaining t = max 0 (total_bits t - t.pos)

  let byte_position t = t.pos lsr 3
end
