examples/fingerprint_files.ml: Array Attack Classifier Format List Util Zipchannel
