type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let default_seed = 0x5DEECE66D

let create ?(seed = default_seed) () = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 output function: advance by the golden gamma, then mix. *)
let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = bits64 t in
  { state = seed }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection-free for small bounds: take the high bits, which are the
     best-mixed, and reduce modulo the bound.  Bias is < bound / 2^62 and
     irrelevant for simulation purposes. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod bound

let byte t = int t 256

let bool t = Int64.logand (bits64 t) 1L = 1L

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

let gaussian t ~mean ~stddev =
  let rec nonzero () =
    let u = float t in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float t in
  let r = sqrt (-2.0 *. log u1) in
  mean +. (stddev *. r *. cos (2.0 *. Float.pi *. u2))

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set b i (Char.chr (byte t))
  done;
  b

let lowercase_string t n =
  String.init n (fun _ -> Char.chr (Char.code 'a' + int t 26))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int t (Array.length a))
