lib/taintchannel/bzip2_gadget.ml: Bytes Char Engine Tval Zipchannel_taint
