type t = {
  cache : Cache.t;
  timing : Timing.t;
  prng : Zipchannel_util.Prng.t;
  cos : int;
  addr_memo : (int, int array) Hashtbl.t; (* set -> eviction buffer lines *)
  (* Telemetry: set-granular prime/probe rounds and lines measured as
     evicted, maintained unconditionally, published to Obs on demand. *)
  mutable primes : int;
  mutable probes : int;
  mutable probe_evictions : int;
}

let create ?(timing = Timing.default) ?(cos = 0) ~cache ~prng () =
  {
    cache;
    timing;
    prng;
    cos;
    addr_memo = Hashtbl.create 256;
    primes = 0;
    probes = 0;
    probe_evictions = 0;
  }

let cos t = t.cos

let allowed_ways t =
  let mask = Cache.cat_mask t.cache ~cos:t.cos in
  let ways = (Cache.config t.cache).Cache.ways in
  let count = ref 0 in
  for w = 0 to ways - 1 do
    if mask land (1 lsl w) <> 0 then incr count
  done;
  !count

(* The attacker's eviction buffer: the k-th line of the buffer that maps
   to [set].  Finding congruent addresses scans the address space, so the
   full way-set is computed once per set and memoized. *)
let buffer t ~set ~count =
  match Hashtbl.find_opt t.addr_memo set with
  | Some lines when Array.length lines >= count -> lines
  | _ ->
      let lines = Cache.addrs_for_set t.cache ~set ~count in
      Hashtbl.replace t.addr_memo set lines;
      lines

let eviction_lines t ~set =
  let n = allowed_ways t in
  let lines = buffer t ~set ~count:n in
  if Array.length lines = n then lines else Array.sub lines 0 n

let prime_lines t lines =
  t.primes <- t.primes + 1;
  for seq = 0 to Array.length lines - 1 do
    ignore
      (Cache.access t.cache ~cos:t.cos ~owner:Attacker
         (Array.unsafe_get lines seq))
  done

let probe_lines t lines =
  t.probes <- t.probes + 1;
  let evicted = ref 0 in
  for seq = 0 to Array.length lines - 1 do
    (* One access both observes the hit/miss and refills the line, so the
       probe doubles as a re-prime; the timing draw happens after the
       access but consumes the same PRNG stream as measuring first
       would. *)
    let hit =
      Cache.access t.cache ~cos:t.cos ~owner:Attacker
        (Array.unsafe_get lines seq)
    in
    if not (Timing.measure t.timing t.prng ~hit) then incr evicted
  done;
  t.probe_evictions <- t.probe_evictions + !evicted;
  !evicted

type stats = { primes : int; probes : int; probe_evictions : int }

let stats (t : t) : stats =
  { primes = t.primes; probes = t.probes; probe_evictions = t.probe_evictions }

module Obs = Zipchannel_obs.Obs

let m_primes = Obs.Metrics.counter "prime_probe.primes"
let m_probes = Obs.Metrics.counter "prime_probe.probes"
let m_probe_evictions = Obs.Metrics.counter "prime_probe.evictions"

let observe_metrics (t : t) =
  if Obs.enabled () then begin
    Obs.Metrics.add m_primes t.primes;
    Obs.Metrics.add m_probes t.probes;
    Obs.Metrics.add m_probe_evictions t.probe_evictions;
    Cache.observe_metrics t.cache
  end

let prime t ~set = prime_lines t (eviction_lines t ~set)

let probe t ~set = probe_lines t (eviction_lines t ~set)

let probe_hit t ~set = probe t ~set > 0

let prime_sets t ~sets = List.iter (fun set -> prime t ~set) sets

let probe_sets t ~sets = List.map (fun set -> (set, probe t ~set)) sets
