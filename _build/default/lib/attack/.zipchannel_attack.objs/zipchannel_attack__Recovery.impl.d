lib/attack/recovery.ml: Array Bytes Char List Zipchannel_compress
