lib/mitigation/oblivious.ml: Array Buffer Bytes Char Zipchannel_compress
