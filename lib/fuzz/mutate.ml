module Prng = Zipchannel_util.Prng

(* Each operator takes and returns a fresh bytes value; [mutate] chains
   a few of them.  Operators must accept the empty input. *)

let flip_bit rng b =
  let n = Bytes.length b in
  if n = 0 then Bytes.make 1 '\x01'
  else begin
    let b = Bytes.copy b in
    let i = Prng.int rng n in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Prng.int rng 8)));
    b
  end

let set_byte rng b =
  let n = Bytes.length b in
  if n = 0 then Bytes.make 1 (Char.chr (Prng.byte rng))
  else begin
    let b = Bytes.copy b in
    Bytes.set b (Prng.int rng n) (Char.chr (Prng.byte rng));
    b
  end

let truncate rng b =
  let n = Bytes.length b in
  if n = 0 then b else Bytes.sub b 0 (Prng.int rng n)

let drop_prefix rng b =
  let n = Bytes.length b in
  if n = 0 then b
  else
    let k = 1 + Prng.int rng n in
    Bytes.sub b k (n - k)

let extend rng b =
  let extra = Prng.bytes rng (1 + Prng.int rng 16) in
  Bytes.cat b extra

let delete_chunk rng b =
  let n = Bytes.length b in
  if n < 2 then b
  else
    let off = Prng.int rng n in
    let len = 1 + Prng.int rng (n - off) in
    Bytes.cat (Bytes.sub b 0 off) (Bytes.sub b (off + len) (n - off - len))

let duplicate_chunk rng b =
  let n = Bytes.length b in
  if n = 0 then b
  else
    let off = Prng.int rng n in
    let len = 1 + Prng.int rng (min 64 (n - off)) in
    Bytes.cat
      (Bytes.sub b 0 (off + len))
      (Bytes.cat (Bytes.sub b off len) (Bytes.sub b (off + len) (n - off - len)))

let splice rng ~corpus b =
  if Array.length corpus = 0 then extend rng b
  else
    let other = Prng.pick rng corpus in
    let cut b' =
      let n = Bytes.length b' in
      if n = 0 then (Bytes.empty, Bytes.empty)
      else
        let k = Prng.int rng (n + 1) in
        (Bytes.sub b' 0 k, Bytes.sub b' k (n - k))
    in
    let head, _ = cut b and _, tail = cut other in
    Bytes.cat head tail

(* Integer-field mutator: pick a 1/2/4-byte aligned window near the head
   or tail — where every format in the registry keeps its length, count
   and checksum fields — and overwrite it with a boundary value.  This
   is what finds forged-length decompression bombs. *)
let boundary_values = [| 0x00; 0x01; 0x7f; 0x80; 0xff |]

let int_field rng b =
  let n = Bytes.length b in
  if n = 0 then Bytes.make 4 '\xff'
  else begin
    let b = Bytes.copy b in
    let width = [| 1; 2; 4 |].(Prng.int rng 3) in
    let zone = min n 16 in
    let off =
      if Prng.bool rng then Prng.int rng zone (* header *)
      else n - 1 - Prng.int rng zone (* trailer *)
    in
    let v = Prng.pick rng boundary_values in
    for k = 0 to width - 1 do
      let i = off + k in
      if i >= 0 && i < n then Bytes.set b i (Char.chr v)
    done;
    b
  end

let operators =
  [|
    ("flip_bit", fun rng ~corpus:_ b -> flip_bit rng b);
    ("set_byte", fun rng ~corpus:_ b -> set_byte rng b);
    ("truncate", fun rng ~corpus:_ b -> truncate rng b);
    ("drop_prefix", fun rng ~corpus:_ b -> drop_prefix rng b);
    ("extend", fun rng ~corpus:_ b -> extend rng b);
    ("delete_chunk", fun rng ~corpus:_ b -> delete_chunk rng b);
    ("duplicate_chunk", fun rng ~corpus:_ b -> duplicate_chunk rng b);
    ("splice", fun rng ~corpus b -> splice rng ~corpus b);
    ("int_field", fun rng ~corpus:_ b -> int_field rng b);
  |]

let operator_names = Array.to_list (Array.map fst operators)

let mutate rng ~corpus base =
  let rounds = 1 + Prng.int rng 4 in
  let b = ref base in
  for _ = 1 to rounds do
    let _, op = Prng.pick rng operators in
    b := op rng ~corpus !b
  done;
  (* [mutate] promises an input distinct from [base]; a truncate of an
     empty stream (etc.) can be a no-op, so force a byte change then. *)
  if Bytes.equal !b base then flip_bit rng !b else !b
