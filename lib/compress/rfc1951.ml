type block_kind = Stored | Fixed | Dynamic

let end_of_block = 256

(* Fixed-Huffman code lengths, RFC 1951 Section 3.2.6. *)
let fixed_litlen_lengths =
  Array.init 288 (fun s ->
      if s <= 143 then 8 else if s <= 255 then 9 else if s <= 279 then 7 else 8)

let fixed_dist_lengths = Array.make 30 5

(* Order in which code-length-code lengths appear in a dynamic header. *)
let cl_order =
  [| 16; 17; 18; 0; 8; 7; 9; 6; 10; 5; 11; 4; 12; 3; 13; 2; 14; 1; 15 |]

(* ------------------------------------------------------------------ *)
(* Encoder *)

let write_tokens w litlen_codes dist_codes tokens =
  let put_code codes sym =
    let c : Huffman.code = codes.(sym) in
    if c.Huffman.length = 0 then failwith "Rfc1951: symbol without code";
    Bitio.Lsb_writer.add_huffman w ~code:c.Huffman.bits ~length:c.Huffman.length
  in
  List.iter
    (fun token ->
      match token with
      | Lz77.Literal c -> put_code litlen_codes (Char.code c)
      | Lz77.Match { length; distance } ->
          let lsym, lbits, lval = Deflate.length_code length in
          put_code litlen_codes lsym;
          if lbits > 0 then Bitio.Lsb_writer.add_bits w ~value:lval ~count:lbits;
          let dsym, dbits, dval = Deflate.distance_code distance in
          put_code dist_codes dsym;
          if dbits > 0 then Bitio.Lsb_writer.add_bits w ~value:dval ~count:dbits)
    tokens;
  put_code litlen_codes end_of_block

(* Run-length encode the concatenated code-length arrays with the repeat
   symbols 16 (copy previous 3-6), 17 (zeros 3-10), 18 (zeros 11-138). *)
let encode_code_lengths lengths =
  let n = Array.length lengths in
  let out = ref [] in
  let emit sym bits v = out := (sym, bits, v) :: !out in
  let i = ref 0 in
  while !i < n do
    let v = lengths.(!i) in
    let run = ref 0 in
    while !i + !run < n && lengths.(!i + !run) = v do incr run done;
    if v = 0 then begin
      let remaining = ref !run in
      while !remaining > 0 do
        if !remaining >= 11 then begin
          let take = min 138 !remaining in
          emit 18 7 (take - 11);
          remaining := !remaining - take
        end
        else if !remaining >= 3 then begin
          let take = min 10 !remaining in
          emit 17 3 (take - 3);
          remaining := !remaining - take
        end
        else begin
          emit 0 0 0;
          decr remaining
        end
      done
    end
    else begin
      (* First occurrence literal, rest via 16-repeats. *)
      emit v 0 0;
      let remaining = ref (!run - 1) in
      while !remaining > 0 do
        if !remaining >= 3 then begin
          let take = min 6 !remaining in
          emit 16 2 (take - 3);
          remaining := !remaining - take
        end
        else begin
          emit v 0 0;
          decr remaining
        end
      done
    end;
    i := !i + !run
  done;
  List.rev !out

let trimmed_length lengths ~min_keep =
  let last = ref (Array.length lengths - 1) in
  while !last >= min_keep && lengths.(!last) = 0 do decr last done;
  !last + 1

let write_dynamic_header w litlen_lengths dist_lengths =
  let hlit = max 257 (trimmed_length litlen_lengths ~min_keep:256) in
  let hdist = max 1 (trimmed_length dist_lengths ~min_keep:0) in
  let all = Array.append (Array.sub litlen_lengths 0 hlit) (Array.sub dist_lengths 0 hdist) in
  let cl_syms = encode_code_lengths all in
  let cl_freqs = Array.make 19 0 in
  List.iter (fun (s, _, _) -> cl_freqs.(s) <- cl_freqs.(s) + 1) cl_syms;
  let cl_lengths = Huffman.lengths_of_freqs ~max_length:7 cl_freqs in
  let cl_codes = Huffman.canonical_codes cl_lengths in
  let hclen =
    let last = ref 18 in
    while !last >= 4 && cl_lengths.(cl_order.(!last)) = 0 do decr last done;
    !last + 1
  in
  Bitio.Lsb_writer.add_bits w ~value:(hlit - 257) ~count:5;
  Bitio.Lsb_writer.add_bits w ~value:(hdist - 1) ~count:5;
  Bitio.Lsb_writer.add_bits w ~value:(hclen - 4) ~count:4;
  for k = 0 to hclen - 1 do
    Bitio.Lsb_writer.add_bits w ~value:cl_lengths.(cl_order.(k)) ~count:3
  done;
  List.iter
    (fun (sym, bits, v) ->
      let c = cl_codes.(sym) in
      Bitio.Lsb_writer.add_huffman w ~code:c.Huffman.bits ~length:c.Huffman.length;
      if bits > 0 then Bitio.Lsb_writer.add_bits w ~value:v ~count:bits)
    cl_syms

let deflate ?(kind = Dynamic) ?strategy ?max_chain input =
  let w = Bitio.Lsb_writer.create () in
  (match kind with
  | Stored ->
      (* Emit 65535-byte stored blocks; the last one carries BFINAL. *)
      let n = Bytes.length input in
      let pos = ref 0 in
      let emit_block ~final off len =
        Bitio.Lsb_writer.add_bits w ~value:(if final then 1 else 0) ~count:1;
        Bitio.Lsb_writer.add_bits w ~value:0 ~count:2;
        Bitio.Lsb_writer.align_byte w;
        Bitio.Lsb_writer.add_bits w ~value:len ~count:16;
        Bitio.Lsb_writer.add_bits w ~value:(len lxor 0xffff) ~count:16;
        for k = 0 to len - 1 do
          Bitio.Lsb_writer.add_bits w
            ~value:(Char.code (Bytes.get input (off + k)))
            ~count:8
        done
      in
      if n = 0 then emit_block ~final:true 0 0
      else
        while !pos < n do
          let len = min 0xffff (n - !pos) in
          emit_block ~final:(!pos + len >= n) !pos len;
          pos := !pos + len
        done
  | Fixed ->
      let tokens = Lz77.tokenize ?strategy ?max_chain input in
      Bitio.Lsb_writer.add_bits w ~value:1 ~count:1;
      Bitio.Lsb_writer.add_bits w ~value:1 ~count:2;
      write_tokens w
        (Huffman.canonical_codes fixed_litlen_lengths)
        (Huffman.canonical_codes fixed_dist_lengths)
        tokens
  | Dynamic ->
      let tokens = Lz77.tokenize ?strategy ?max_chain input in
      let litlen_freqs = Array.make 286 0 in
      let dist_freqs = Array.make 30 0 in
      List.iter
        (fun token ->
          match token with
          | Lz77.Literal c ->
              litlen_freqs.(Char.code c) <- litlen_freqs.(Char.code c) + 1
          | Lz77.Match { length; distance } ->
              let lsym, _, _ = Deflate.length_code length in
              let dsym, _, _ = Deflate.distance_code distance in
              litlen_freqs.(lsym) <- litlen_freqs.(lsym) + 1;
              dist_freqs.(dsym) <- dist_freqs.(dsym) + 1)
        tokens;
      litlen_freqs.(end_of_block) <- litlen_freqs.(end_of_block) + 1;
      let litlen_lengths = Huffman.lengths_of_freqs ~max_length:15 litlen_freqs in
      let dist_lengths = Huffman.lengths_of_freqs ~max_length:15 dist_freqs in
      Bitio.Lsb_writer.add_bits w ~value:1 ~count:1;
      Bitio.Lsb_writer.add_bits w ~value:2 ~count:2;
      write_dynamic_header w litlen_lengths dist_lengths;
      write_tokens w
        (Huffman.canonical_codes litlen_lengths)
        (Huffman.canonical_codes dist_lengths)
        tokens);
  Bitio.Lsb_writer.to_bytes w

(* ------------------------------------------------------------------ *)
(* Decoder *)

let read_dynamic_tables r =
  let read_bits n = Bitio.Lsb_reader.read_bits r n in
  let hlit = read_bits 5 + 257 in
  let hdist = read_bits 5 + 1 in
  let hclen = read_bits 4 + 4 in
  if hlit > 286 || hdist > 30 then failwith "Rfc1951.inflate: bad counts";
  let cl_lengths = Array.make 19 0 in
  for k = 0 to hclen - 1 do
    cl_lengths.(cl_order.(k)) <- read_bits 3
  done;
  let cl = Huffman.decoder_of_lengths cl_lengths in
  let next_bit () = Bitio.Lsb_reader.read_bit r in
  let lengths = Array.make (hlit + hdist) 0 in
  let pos = ref 0 in
  while !pos < hlit + hdist do
    match Huffman.read_symbol_bits next_bit cl with
    | s when s <= 15 ->
        lengths.(!pos) <- s;
        incr pos
    | 16 ->
        if !pos = 0 then failwith "Rfc1951.inflate: repeat with no previous";
        let prev = lengths.(!pos - 1) in
        let n = 3 + read_bits 2 in
        if !pos + n > hlit + hdist then failwith "Rfc1951.inflate: repeat overflow";
        for _ = 1 to n do
          lengths.(!pos) <- prev;
          incr pos
        done
    | 17 ->
        let n = 3 + read_bits 3 in
        if !pos + n > hlit + hdist then failwith "Rfc1951.inflate: repeat overflow";
        pos := !pos + n
    | 18 ->
        let n = 11 + read_bits 7 in
        if !pos + n > hlit + hdist then failwith "Rfc1951.inflate: repeat overflow";
        pos := !pos + n
    | _ -> failwith "Rfc1951.inflate: bad code-length symbol"
  done;
  (Array.sub lengths 0 hlit, Array.sub lengths hlit hdist)

let inflate_block r out litlen dist =
  let next_bit () = Bitio.Lsb_reader.read_bit r in
  let finished = ref false in
  while not !finished do
    let sym = Huffman.read_symbol_bits next_bit litlen in
    if sym < 256 then Buffer.add_char out (Char.chr sym)
    else if sym = end_of_block then finished := true
    else begin
      let lbase, lbits = Deflate.base_of_length_code sym in
      let length = lbase + Bitio.Lsb_reader.read_bits r lbits in
      let dist_decoder =
        match dist with
        | Some d -> d
        | None -> failwith "Rfc1951.inflate: match in distance-less block"
      in
      let dsym = Huffman.read_symbol_bits next_bit dist_decoder in
      let dbase, dbits = Deflate.base_of_distance_code dsym in
      let distance = dbase + Bitio.Lsb_reader.read_bits r dbits in
      let start = Buffer.length out - distance in
      if start < 0 then failwith "Rfc1951.inflate: distance too far back";
      for k = 0 to length - 1 do
        Buffer.add_char out (Buffer.nth out (start + k))
      done
    end
  done

let inflate_result data =
  let r = Bitio.Lsb_reader.create data in
  Codec_error.protect ~codec:"rfc1951"
    ~offset:(fun () -> Bitio.Lsb_reader.byte_position r)
  @@ fun () ->
  let out = Buffer.create (Bytes.length data * 3) in
  let final = ref false in
  while not !final do
    final := Bitio.Lsb_reader.read_bits r 1 = 1;
    match Bitio.Lsb_reader.read_bits r 2 with
    | 0 ->
        Bitio.Lsb_reader.align_byte r;
        let len = Bitio.Lsb_reader.read_bits r 16 in
        let nlen = Bitio.Lsb_reader.read_bits r 16 in
        if len lxor 0xffff <> nlen then
          failwith "Rfc1951.inflate: stored length check";
        for _ = 1 to len do
          Buffer.add_char out (Char.chr (Bitio.Lsb_reader.read_bits r 8))
        done
    | 1 ->
        inflate_block r out
          (Huffman.decoder_of_lengths fixed_litlen_lengths)
          (Some (Huffman.decoder_of_lengths fixed_dist_lengths))
    | 2 ->
        let litlen_lengths, dist_lengths = read_dynamic_tables r in
        let dist =
          if Array.exists (fun l -> l > 0) dist_lengths then
            Some (Huffman.decoder_of_lengths dist_lengths)
          else None
        in
        inflate_block r out (Huffman.decoder_of_lengths litlen_lengths) dist
    | _ -> failwith "Rfc1951.inflate: reserved block type"
  done;
  Buffer.to_bytes out

let inflate data = Codec_error.unwrap (inflate_result data)

(* ------------------------------------------------------------------ *)
(* RFC 1950 (zlib) wrapper *)

module Zlib = struct
  let compress ?kind data =
    let body = deflate ?kind data in
    let buf = Buffer.create (Bytes.length body + 6) in
    (* CMF: deflate, 32K window; FLG chosen so (CMF*256 + FLG) mod 31 = 0. *)
    let cmf = 0x78 in
    let flg =
      let base = cmf * 256 in
      let rem = base mod 31 in
      if rem = 0 then 0 else 31 - rem
    in
    Buffer.add_char buf (Char.chr cmf);
    Buffer.add_char buf (Char.chr flg);
    Buffer.add_bytes buf body;
    let adler = Checksum.Adler32.digest data in
    for k = 3 downto 0 do
      Buffer.add_char buf (Char.chr ((adler lsr (8 * k)) land 0xff))
    done;
    Buffer.to_bytes buf

  let decompress_result data =
    let err ?offset reason = Codec_error.error ~codec:"zlib" ?offset reason in
    if Bytes.length data < 6 then err ~offset:0 "Rfc1951.Zlib: too short"
    else begin
      let cmf = Char.code (Bytes.get data 0) in
      let flg = Char.code (Bytes.get data 1) in
      if cmf land 0x0f <> 8 then err ~offset:0 "Rfc1951.Zlib: not deflate"
      else if ((cmf * 256) + flg) mod 31 <> 0 then
        err ~offset:1 "Rfc1951.Zlib: bad header check"
      else if flg land 0x20 <> 0 then
        err ~offset:1 "Rfc1951.Zlib: preset dictionary unsupported"
      else begin
        let body = Bytes.sub data 2 (Bytes.length data - 6) in
        match inflate_result body with
        | Error e ->
            Error
              {
                e with
                Codec_error.codec = "zlib";
                offset = (if e.Codec_error.offset < 0 then -1 else e.Codec_error.offset + 2);
              }
        | Ok plain ->
            let adler = ref 0 in
            for k = 0 to 3 do
              adler :=
                (!adler lsl 8)
                lor Char.code (Bytes.get data (Bytes.length data - 4 + k))
            done;
            if Checksum.Adler32.digest plain <> !adler then
              err ~offset:(Bytes.length data - 4) "Rfc1951.Zlib: adler32 mismatch"
            else Ok plain
      end
    end

  let decompress data = Codec_error.unwrap (decompress_result data)
end

(* ------------------------------------------------------------------ *)
(* RFC 1952 (gzip) wrapper *)

module Gzip = struct
  let ftext = 0x01
  let fhcrc = 0x02
  let fextra = 0x04
  let fname = 0x08
  let fcomment = 0x10

  let compress ?kind ?name data =
    let body = deflate ?kind data in
    let buf = Buffer.create (Bytes.length body + 24) in
    Buffer.add_char buf '\x1f';
    Buffer.add_char buf '\x8b';
    Buffer.add_char buf '\x08';
    Buffer.add_char buf
      (Char.chr (match name with Some _ -> fname | None -> 0));
    for _ = 1 to 4 do Buffer.add_char buf '\000' done (* MTIME *);
    Buffer.add_char buf '\000' (* XFL *);
    Buffer.add_char buf '\255' (* OS: unknown *);
    (match name with
    | Some n ->
        if String.contains n '\000' then invalid_arg "Gzip.compress: name";
        Buffer.add_string buf n;
        Buffer.add_char buf '\000'
    | None -> ());
    Buffer.add_bytes buf body;
    let crc = Checksum.Crc32.digest data in
    for k = 0 to 3 do
      Buffer.add_char buf (Char.chr ((crc lsr (8 * k)) land 0xff))
    done;
    let isize = Bytes.length data land 0xffffffff in
    for k = 0 to 3 do
      Buffer.add_char buf (Char.chr ((isize lsr (8 * k)) land 0xff))
    done;
    Buffer.to_bytes buf

  (* Returns (flags, offset of the deflate body, optional FNAME). *)
  let parse_header data =
    let n = Bytes.length data in
    if n < 18 then failwith "Rfc1951.Gzip: too short";
    if Char.code (Bytes.get data 0) <> 0x1f || Char.code (Bytes.get data 1) <> 0x8b
    then failwith "Rfc1951.Gzip: bad magic";
    if Char.code (Bytes.get data 2) <> 8 then failwith "Rfc1951.Gzip: not deflate";
    let flg = Char.code (Bytes.get data 3) in
    let pos = ref 10 in
    if flg land fextra <> 0 then begin
      if !pos + 2 > n then failwith "Rfc1951.Gzip: truncated FEXTRA";
      let xlen =
        Char.code (Bytes.get data !pos)
        lor (Char.code (Bytes.get data (!pos + 1)) lsl 8)
      in
      pos := !pos + 2 + xlen
    end;
    let name = ref None in
    if flg land fname <> 0 then begin
      let start = !pos in
      while !pos < n && Bytes.get data !pos <> '\000' do incr pos done;
      if !pos >= n then failwith "Rfc1951.Gzip: truncated FNAME";
      name := Some (Bytes.sub_string data start (!pos - start));
      incr pos
    end;
    if flg land fcomment <> 0 then begin
      while !pos < n && Bytes.get data !pos <> '\000' do incr pos done;
      if !pos >= n then failwith "Rfc1951.Gzip: truncated FCOMMENT";
      incr pos
    end;
    if flg land fhcrc <> 0 then pos := !pos + 2;
    ignore ftext;
    if !pos + 8 > n then failwith "Rfc1951.Gzip: truncated";
    (flg, !pos, !name)

  let decompress_result data =
    let err ?offset reason = Codec_error.error ~codec:"gzip" ?offset reason in
    match parse_header data with
    | exception Failure reason -> err ~offset:0 reason
    | _, body_off, _ -> (
        let n = Bytes.length data in
        let body = Bytes.sub data body_off (n - body_off - 8) in
        match inflate_result body with
        | Error e ->
            Error
              {
                e with
                Codec_error.codec = "gzip";
                offset =
                  (if e.Codec_error.offset < 0 then -1
                   else e.Codec_error.offset + body_off);
              }
        | Ok plain ->
            let le32 off =
              Char.code (Bytes.get data off)
              lor (Char.code (Bytes.get data (off + 1)) lsl 8)
              lor (Char.code (Bytes.get data (off + 2)) lsl 16)
              lor (Char.code (Bytes.get data (off + 3)) lsl 24)
            in
            if Checksum.Crc32.digest plain <> le32 (n - 8) then
              err ~offset:(n - 8) "Rfc1951.Gzip: crc mismatch"
            else if Bytes.length plain land 0xffffffff <> le32 (n - 4) then
              err ~offset:(n - 4) "Rfc1951.Gzip: size mismatch"
            else Ok plain)

  let decompress data = Codec_error.unwrap (decompress_result data)

  let original_name data =
    let _, _, name = parse_header data in
    name
end
