(** The codec registry the fuzzer drives.

    One entry per public decoder boundary of {!Zipchannel_compress}:
    the blocked pipelines (bzip2), the DEFLATE family (deflate,
    rfc1951, zlib, gzip), the dictionary and entropy coders (lzw,
    huffman), the byte-level stage (rle1) and the containers (stream,
    archive).  Each entry pairs the compressor (used to build the valid
    corpus) with both decode APIs: the [result]-returning safe decoder
    the oracle checks, and the historical exception API whose contract
    ("raises only its documented exception") the robustness tests
    enforce. *)

type t = {
  name : string;
  compress : bytes -> bytes;
  decode : bytes -> (bytes, Zipchannel_compress.Codec_error.t) result;
  decode_exn : bytes -> bytes;
      (** historical API; must raise only [Failure] /
          [Container.Corrupt], never [Out_of_bits] *)
  max_plain : int;
      (** cap on corpus plaintext size — keeps bzip2 block sorting
          cheap enough for tens of thousands of cases *)
}

val all : t list
(** Every codec, in a fixed report order. *)

val names : string list

val find : string -> t option
(** Lookup by {!t.name}. *)
