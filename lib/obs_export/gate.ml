(* Per-metric regression gating for bench --compare.

   Metric classes express how much a metric is allowed to move between a
   committed baseline and the current run:
   - [Exact]   deterministic counters: any change (beyond float
               round-trip noise) is a regression;
   - [Band p]  cache/timing-coupled metrics: allowed to move up to p%
               in either direction;
   - [Ignore]  metrics that depend on run count or ordering and carry no
               regression signal.

   Classification is by first matching name prefix, so a thresholds file
   reads top-to-bottom like a routing table. *)

type klass = Exact | Band of float | Ignore

(* [bench] scopes a rule to benchmarks whose name starts with it ("" =
   every benchmark): stateful benchmark fixtures (the cache "round"
   cases) accumulate across however many runs the harness chose, so the
   same counter can be deterministic under one benchmark and
   run-count-coupled under another. *)
type rule = { bench : string; prefix : string; klass : klass }

type rules = {
  metric_rules : rule list;
  ns_max_increase_pct : float option;
      (* Gate on each benchmark's ns_per_run growing more than this;
         None disables wall-time gating (shared CI runners). *)
}

let classify rules ?(bench = "") name =
  let rec go = function
    | [] -> Exact
    | r :: rest ->
        if
          String.starts_with ~prefix:r.bench bench
          && String.starts_with ~prefix:r.prefix name
        then r.klass
        else go rest
  in
  go rules.metric_rules

let default_rules =
  let any prefix klass = { bench = ""; prefix; klass } in
  {
    ns_max_increase_pct = Some 25.0;
    metric_rules =
      [
        (* Cumulative hit-rate and per-epoch loss depend on how many
           runs the harness chose; no signal in their values. *)
        any "taint.tlb_hit_rate" Ignore;
        any "classifier.epoch_loss" Ignore;
        (* The cache "round" benches reuse one simulator across every
           timed run, so their counters scale directly with the run
           count the harness picked. *)
        { bench = "cache/"; prefix = "cache."; klass = Ignore };
        { bench = "cache/"; prefix = "prime_probe."; klass = Ignore };
        (* Cache simulators keep state across timed runs, so their
           counters scale with run count and layout. *)
        any "cache." (Band 50.0);
        any "prime_probe." (Band 50.0);
        (* Leak rates are ratios of the above where cache-coupled. *)
        any "leak." (Band 25.0);
        any "" Exact;
      ];
  }

(* -- thresholds file --------------------------------------------------- *)

let klass_of_json j =
  match Option.bind (Json.member "class" j) Json.to_str with
  | Some "exact" -> Exact
  | Some "ignore" -> Ignore
  | Some "band" -> (
      match Option.bind (Json.member "pct" j) Json.to_num with
      | Some pct when pct >= 0. -> Band pct
      | _ -> failwith "Gate: band rule needs a non-negative \"pct\"")
  | Some other -> failwith ("Gate: unknown metric class " ^ other)
  | None -> failwith "Gate: rule missing \"class\""

let rules_of_json j =
  let metric_rules =
    match Json.member "metrics" j with
    | Some (Json.Arr rs) ->
        List.map
          (fun r ->
            let bench =
              Option.value ~default:""
                (Option.bind (Json.member "bench" r) Json.to_str)
            in
            match Option.bind (Json.member "prefix" r) Json.to_str with
            | Some prefix -> { bench; prefix; klass = klass_of_json r }
            | None -> failwith "Gate: rule missing \"prefix\"")
          rs
    | _ -> failwith "Gate: thresholds file missing \"metrics\" array"
  in
  let ns_max_increase_pct =
    match Json.member "ns_per_run_max_increase_pct" j with
    | None | Some Json.Null -> None
    | Some v -> (
        match Json.to_num v with
        | Some pct -> Some pct
        | None -> failwith "Gate: ns_per_run_max_increase_pct must be a number")
  in
  { metric_rules; ns_max_increase_pct }

let load path =
  let ic = open_in_bin path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  rules_of_json (Json.parse content)

(* -- comparison -------------------------------------------------------- *)

type regression = {
  bench : string;
  metric : string;
  baseline : float;
  current : float;
  change_pct : float;  (* +inf when the baseline was 0 or the metric vanished *)
  allowed : klass;
}

let change_pct ~baseline ~current =
  if Float.abs baseline > 0. then
    100. *. (current -. baseline) /. Float.abs baseline
  else if Float.abs current > 0. then Float.infinity
  else 0.

(* Exact metrics still round-trip through JSON, so compare with a tiny
   relative tolerance rather than bitwise. *)
let exact_tol = 1e-9

let check ~bench ~allowed ~metric ~baseline ~current =
  let pct = change_pct ~baseline ~current in
  let bad =
    match allowed with
    | Ignore -> false
    | Exact ->
        Float.abs (current -. baseline)
        > exact_tol *. Float.max 1. (Float.abs baseline)
    | Band limit -> Float.abs pct > limit
  in
  if bad then Some { bench; metric; baseline; current; change_pct = pct; allowed }
  else None

let compare_metrics rules ~bench ~baseline ~current =
  List.filter_map
    (fun (metric, v0) ->
      let allowed = classify rules ~bench metric in
      match List.assoc_opt metric current with
      | Some v -> check ~bench ~allowed ~metric ~baseline:v0 ~current:v
      | None ->
          if allowed = Ignore then None
          else
            Some
              {
                bench;
                metric;
                baseline = v0;
                current = 0.;
                change_pct = Float.neg_infinity;
                allowed;
              })
    baseline

let check_ns rules ~bench ~baseline ~current =
  match rules.ns_max_increase_pct with
  | None -> None
  | Some limit ->
      let pct = change_pct ~baseline ~current in
      if pct > limit then
        Some
          {
            bench;
            metric = "ns_per_run";
            baseline;
            current;
            change_pct = pct;
            allowed = Band limit;
          }
      else None

let pp_klass ppf = function
  | Exact -> Format.fprintf ppf "exact"
  | Band pct -> Format.fprintf ppf "band \xc2\xb1%g%%" pct
  | Ignore -> Format.fprintf ppf "ignore"

let pp_regression ppf r =
  if r.change_pct = Float.neg_infinity then
    Format.fprintf ppf "%s: %s missing from current run (baseline %g, %a)"
      r.bench r.metric r.baseline pp_klass r.allowed
  else
    Format.fprintf ppf "%s: %s %g -> %g (%+.2f%%, allowed %a)" r.bench r.metric
      r.baseline r.current r.change_pct pp_klass r.allowed

type mover = {
  span : string;
  baseline_share : float;
  current_share : float;
  delta_pt : float;
}

let profile_movers ~baseline ~current =
  let total l = List.fold_left (fun acc (_, n) -> acc + n) 0 l in
  let bt = total baseline and ct = total current in
  if bt = 0 || ct = 0 then []
  else begin
    let share total n = 100. *. float_of_int n /. float_of_int total in
    let names = Hashtbl.create 32 in
    List.iter (fun (n, _) -> Hashtbl.replace names n ()) baseline;
    List.iter (fun (n, _) -> Hashtbl.replace names n ()) current;
    let count l name =
      match List.assoc_opt name l with Some n -> n | None -> 0
    in
    Hashtbl.fold
      (fun name () acc ->
        let b = share bt (count baseline name)
        and c = share ct (count current name) in
        { span = name; baseline_share = b; current_share = c; delta_pt = c -. b }
        :: acc)
      names []
    |> List.sort (fun a b ->
           let da = Float.abs a.delta_pt and db = Float.abs b.delta_pt in
           if da <> db then compare db da else compare a.span b.span)
  end

let pp_mover ppf m =
  Format.fprintf ppf "span %s self-share %.1f%% -> %.1f%% (%+.1fpt)" m.span
    m.baseline_share m.current_share m.delta_pt
