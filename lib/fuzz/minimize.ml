(* ddmin-style chunk removal, then byte simplification.  Each phase is a
   plain deterministic scan; [steps] caps total predicate calls so a
   slow reproducer cannot stall the whole run. *)

let remove_chunks ~steps ~interesting b =
  let b = ref b in
  let chunk = ref (max 1 (Bytes.length !b / 2)) in
  while !chunk >= 1 && !steps > 0 do
    let off = ref 0 in
    let progress = ref false in
    while !off < Bytes.length !b && !steps > 0 do
      let n = Bytes.length !b in
      let len = min !chunk (n - !off) in
      let candidate =
        Bytes.cat (Bytes.sub !b 0 !off) (Bytes.sub !b (!off + len) (n - !off - len))
      in
      decr steps;
      if interesting candidate then begin
        b := candidate;
        progress := true
        (* keep [off] in place: the next chunk slid into this offset *)
      end
      else off := !off + len
    done;
    if not !progress then chunk := !chunk / 2
  done;
  !b

let simplify_bytes ~steps ~interesting b =
  let b = ref (Bytes.copy b) in
  let i = ref 0 in
  while !i < Bytes.length !b && !steps > 0 do
    let c = Bytes.get !b !i in
    if c <> '\x00' then begin
      let candidate = Bytes.copy !b in
      Bytes.set candidate !i '\x00';
      decr steps;
      if interesting candidate then b := candidate
    end;
    incr i
  done;
  !b

let minimize ?(max_steps = 2000) ~interesting b =
  if not (interesting b) then
    invalid_arg "Minimize.minimize: input is not interesting";
  let steps = ref max_steps in
  let b = remove_chunks ~steps ~interesting b in
  simplify_bytes ~steps ~interesting b
