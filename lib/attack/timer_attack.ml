open Zipchannel_util
module Cache = Zipchannel_cache.Cache
module Timing = Zipchannel_cache.Timing
module Prime_probe = Zipchannel_cache.Prime_probe
module Page_table = Zipchannel_sgx.Page_table
module Enclave = Zipchannel_sgx.Enclave
module Block_sort = Zipchannel_compress.Block_sort

type config = {
  interval_mean : float;
  interval_jitter : float;
  use_cat : bool;
  cache_config : Cache.config;
  timing : Timing.t;
  seed : int;
}

let default_config =
  {
    interval_mean = 3.0;
    interval_jitter = 1.0;
    use_cat = true;
    cache_config = Cache.default_config;
    timing = { Timing.default with Timing.outlier_prob = 0.0005 };
    seed = 0x71AE2;
  }

type result = {
  recovered : bytes;
  byte_accuracy : float;
  bit_accuracy : float;
  windows : int;
  observed_events : int;
}

let run ?(config = default_config) input =
  let n = Bytes.length input in
  let prng = Prng.create ~seed:config.seed () in
  let cache = Cache.create config.cache_config in
  if config.use_cat then begin
    let all = (1 lsl config.cache_config.Cache.ways) - 1 in
    Cache.set_cat_mask cache ~cos:0 ~mask:1;
    if config.cache_config.Cache.ways > 1 then
      Cache.set_cat_mask cache ~cos:1 ~mask:(all lxor 1)
  end;
  let page_table = Page_table.create () in
  let enclave =
    Enclave.create ~cos:0 ~program:(Victim.program input) ~page_table ~cache ()
  in
  let pp =
    Prime_probe.create ~timing:config.timing ~cos:0 ~cache
      ~prng:(Prng.split prng) ()
  in
  (* Without the page-fault channel there is no per-access page hint: the
     attacker monitors every line of the whole ftab region (the threat
     model gives it the base address). *)
  let first_line = Victim.ftab_base lsr 6 in
  let last_line = (Victim.ftab_base + (4 * Block_sort.ftab_size) - 1) lsr 6 in
  let monitored =
    Array.init (last_line - first_line + 1) (fun k -> (first_line + k) lsl 6)
  in
  let set_of_line = Array.map (fun addr -> Cache.set_index cache addr) monitored in
  (* set -> indices of monitored lines mapping there (collisions make some
     sets ambiguous, which is part of the baseline's trouble). *)
  let set_to_lines = Hashtbl.create 4096 in
  Array.iteri
    (fun idx set ->
      let prev = try Hashtbl.find set_to_lines set with Not_found -> [] in
      Hashtbl.replace set_to_lines set (idx :: prev))
    set_of_line;
  let distinct_sets =
    Array.of_list (Hashtbl.fold (fun set _ acc -> set :: acc) set_to_lines [])
  in
  (* The monitored sets never change, so their eviction buffers are
     precompiled once into a flat prime+probe plan; every window then
     sweeps them in bulk instead of dispatching per set. *)
  let plan = Prime_probe.plan pp ~sets:distinct_sets in
  let evicted = Array.make (max 1 (Array.length distinct_sets)) 0 in
  Prime_probe.prime_plan pp plan;
  let observations = Array.make (max 1 n) [] in
  let iteration = ref 0 in
  let windows = ref 0 in
  let events = ref 0 in
  let finished = ref false in
  while (not !finished) && !iteration < n do
    (* Victim runs until the (jittery) timer fires. *)
    let k =
      max 1
        (int_of_float
           (Float.round
              (Prng.gaussian prng ~mean:config.interval_mean
                 ~stddev:config.interval_jitter)))
    in
    if Enclave.run_steps enclave k then finished := true;
    incr windows;
    (* The victim's quadrant/block accesses also evict monitored sets; the
       attacker predicts them from its estimated loop position and filters
       those sets out.  Jitter makes the estimate drift, so the filter
       leaks spurious events — part of the baseline's unreliability. *)
    let excluded = Hashtbl.create 16 in
    for di = -1 to 2 do
      let est = !iteration + di in
      if est >= 0 && est < n then begin
        let i_victim = n - 1 - est in
        let q = Victim.quadrant_base + (2 * i_victim) in
        let b = Victim.block_base + i_victim in
        Hashtbl.replace excluded (Cache.set_index cache q) ();
        Hashtbl.replace excluded (Cache.set_index cache b) ()
      end
    done;
    (* Probe every monitored set; surviving evicted sets name candidate
       lines.  The attacker expects one ftab access per window (its timer
       aims at one loop iteration) and assigns the whole candidate set to
       the next iteration — the only option without the fault channel.  A
       window that actually held zero or two accesses shifts every later
       reading, which is exactly the unreliability the paper reports. *)
    let candidates = ref [] in
    Prime_probe.probe_plan pp plan ~evicted;
    Array.iteri
      (fun j set ->
        if evicted.(j) > 0 && not (Hashtbl.mem excluded set) then
          List.iter
            (fun idx -> candidates := monitored.(idx) :: !candidates)
            (Hashtbl.find set_to_lines set))
      distinct_sets;
    if !iteration < n then begin
      (* A hopelessly polluted window (many evictions) carries no
         information; keep at most a handful of candidates. *)
      let kept = if List.length !candidates > 6 then [] else !candidates in
      observations.(!iteration) <- kept;
      if kept <> [] then incr events;
      incr iteration
    end;
    if Enclave.finished enclave then finished := true
  done;
  let recovered =
    if n = 0 then Bytes.empty
    else
      Recovery.bzip2_recover_candidates ~ftab_base:Victim.ftab_base ~n
        observations
  in
  {
    recovered;
    byte_accuracy = Stats.fraction_equal recovered input;
    bit_accuracy = Stats.bit_accuracy recovered input;
    windows = !windows;
    observed_events = !events;
  }
