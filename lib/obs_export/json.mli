(** A minimal JSON reader/writer — just enough for the telemetry formats
    this library consumes and produces (metric snapshots, JSONL span
    streams, BENCH files, threshold tables), with zero dependencies.

    Numbers are floats, as in JSON itself; object member order is
    preserved. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Raised by {!parse}/{!parse_many} with a message naming the offset. *)

val parse : string -> t
(** Parse exactly one JSON value (trailing whitespace allowed). *)

val parse_many : string -> t list
(** Parse a whitespace-separated stream of JSON values — e.g. a JSONL
    file, without requiring one value per line. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** Object member lookup; [None] on missing members and non-objects. *)

val to_num : t -> float option
val to_int : t -> int option
val to_str : t -> string option
val to_arr : t -> t list option
val to_obj : t -> (string * t) list option

(** {1 Writing} *)

val escape : string -> string
(** Escape a string's content for embedding between double quotes. *)

val quote : string -> string
(** [quote s] is [s] escaped and wrapped in double quotes. *)

val to_string : t -> string
(** Compact serialization.  Integral numbers below 1e15 print without a
    fractional part; other numbers print with round-trip precision.
    Non-finite numbers (unrepresentable in JSON) print as [0]. *)
