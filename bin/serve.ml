(* Engine behind [zc stream] and [zc serve]: framed streaming over
   channels and sockets, and the TCP daemon with a Prometheus endpoint.

   Daemon wire protocol (one request per connection):

     client -> "ZCRQ" | op (1 compress, 2 decompress) | codec id |
               frame_size u32 LE | payload... | shutdown(SEND)
     server -> "ZCOK" | result stream          on success
               "ZCER" | utf-8 message          on failure

   The 4-byte response tag keeps errors distinguishable from payload
   without framing the response: a compressed stream starts with "ZCF1"
   and plaintext is arbitrary, so the client needs the tag to know
   whether the rest of the socket is data or a diagnostic. *)

module Frame = Zipchannel.Frame
module Obs = Zipchannel.Obs
module Obs_prof = Zipchannel.Obs_prof
module Leak_audit = Zipchannel.Leak_audit

let m_conns = Obs.Metrics.counter "serve.connections"
let m_bytes_in = Obs.Metrics.counter "serve.bytes_in"
let m_bytes_out = Obs.Metrics.counter "serve.bytes_out"
let m_errors = Obs.Metrics.counter "serve.errors"
let m_rejected = Obs.Metrics.counter "serve.rejected"
let m_scrapes = Obs.Metrics.counter "serve.scrapes"
let g_active = Obs.Metrics.gauge "serve.active_connections"
let m_request_bytes = Obs.Metrics.histogram "serve.request_bytes"
let h_request_ns = Obs.Metrics.histogram "serve.request_ns"
let g_request_p50 = Obs.Metrics.gauge "serve.request_ns_p50"
let g_request_p95 = Obs.Metrics.gauge "serve.request_ns_p95"

(* ------------------------------------------------------------------ *)
(* fd helpers *)

let write_all fd buf ~off ~len =
  let pos = ref off and rem = ref len in
  while !rem > 0 do
    let n = Unix.write fd buf !pos !rem in
    pos := !pos + n;
    rem := !rem - n
  done

let read_exact fd buf off len =
  let got = ref 0 in
  while !got < len do
    let n = Unix.read fd buf (off + !got) (len - !got) in
    if n = 0 then failwith "connection closed mid-header";
    got := !got + n
  done

(* ------------------------------------------------------------------ *)
(* Local streaming: channel -> channel, no daemon involved *)

let with_in_channel path f =
  if path = "-" then f stdin
  else
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () -> f ic)

let with_out_channel path f =
  if path = "-" then begin
    let r = f stdout in
    flush stdout;
    r
  end
  else
    let oc = open_out_bin path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let reader_of_channel ic buf off len = input ic buf off len

let writer_of_channel oc buf ~off ~len = output oc buf off len

let stream_local ~decompress ~codec ~frame_size ~jobs ~input ~output =
  with_in_channel input @@ fun ic ->
  with_out_channel output @@ fun oc ->
  let read = reader_of_channel ic and write = writer_of_channel oc in
  if decompress then
    match Frame.decompress_stream ~jobs ~read ~write () with
    | Ok () -> Ok ()
    | Error e -> Error (Zipchannel.Codec_error.to_string e)
  else begin
    Frame.compress_stream ~frame_size ~jobs ~codec ~read ~write ();
    Ok ()
  end

(* ------------------------------------------------------------------ *)
(* Remote streaming: shuttle bytes to/from a zc serve daemon *)

let parse_host_port s =
  match String.rindex_opt s ':' with
  | None -> Error (Printf.sprintf "expected HOST:PORT, got %S" s)
  | Some i -> (
      let host = String.sub s 0 i in
      let host = if host = "" then "127.0.0.1" else host in
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | None -> Error (Printf.sprintf "bad port in %S" s)
      | Some port -> Ok (host, port))

let resolve host port =
  match Unix.getaddrinfo host (string_of_int port)
          [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ] with
  | [] -> Error (Printf.sprintf "cannot resolve %s" host)
  | ai :: _ -> Ok ai.Unix.ai_addr

let stream_remote ~decompress ~codec ~frame_size ~connect ~input ~output =
  match parse_host_port connect with
  | Error _ as e -> e
  | Ok (host, port) -> (
      match resolve host port with
      | Error _ as e -> e
      | Ok addr ->
          let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
          Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          @@ fun () ->
          Unix.connect fd addr;
          let hdr = Bytes.create 10 in
          Bytes.blit_string "ZCRQ" 0 hdr 0 4;
          Bytes.set hdr 4 (if decompress then '\002' else '\001');
          Bytes.set hdr 5 (Char.chr (Frame.codec_id codec));
          Bytes.set_int32_le hdr 6 (Int32.of_int frame_size);
          write_all fd hdr ~off:0 ~len:10;
          (* Uploader thread: payload up, then half-close so the server
             sees EOF; the main thread reads the response concurrently
             (required: the server streams output while input is still
             arriving, so a send-all-then-read client can deadlock on
             socket buffers). *)
          let upload_err = ref None in
          let uploader =
            Thread.create
              (fun () ->
                try
                  with_in_channel input @@ fun ic ->
                  let buf = Bytes.create 65536 in
                  let rec loop () =
                    let n = Stdlib.input ic buf 0 (Bytes.length buf) in
                    if n > 0 then begin
                      write_all fd buf ~off:0 ~len:n;
                      loop ()
                    end
                  in
                  loop ();
                  Unix.shutdown fd Unix.SHUTDOWN_SEND
                with e -> upload_err := Some (Printexc.to_string e))
              ()
          in
          let tag = Bytes.create 4 in
          let result =
            match read_exact fd tag 0 4 with
            | exception Failure msg -> Error msg
            | () ->
                if Bytes.to_string tag = "ZCOK" then begin
                  with_out_channel output @@ fun oc ->
                  let buf = Bytes.create 65536 in
                  let rec drain () =
                    let n = Unix.read fd buf 0 (Bytes.length buf) in
                    if n > 0 then begin
                      Stdlib.output oc buf 0 n;
                      drain ()
                    end
                  in
                  drain ();
                  Ok ()
                end
                else if Bytes.to_string tag = "ZCER" then begin
                  let b = Buffer.create 64 in
                  let buf = Bytes.create 4096 in
                  let rec drain () =
                    let n = Unix.read fd buf 0 (Bytes.length buf) in
                    if n > 0 then begin
                      Buffer.add_subbytes b buf 0 n;
                      drain ()
                    end
                  in
                  drain ();
                  Error ("server: " ^ Buffer.contents b)
                end
                else Error "malformed response from server"
          in
          Thread.join uploader;
          (match (!upload_err, result) with
          | Some msg, Ok () -> Error ("upload: " ^ msg)
          | _, r -> r))

(* ------------------------------------------------------------------ *)
(* The daemon *)

type counted_fd = { fd : Unix.file_descr; counter : Obs.Metrics.counter }

(* Wrap a socket read/write with byte accounting so per-connection
   traffic lands in the serve.* counters. *)
let counted_read c buf off len =
  let n = Unix.read c.fd buf off len in
  Obs.Metrics.add c.counter n;
  n

let counted_write c buf ~off ~len =
  write_all c.fd buf ~off ~len;
  Obs.Metrics.add m_bytes_out len

let active = ref 0
let active_mu = Mutex.create ()

let adjust_active d =
  Mutex.lock active_mu;
  active := !active + d;
  Obs.Metrics.set_gauge g_active (float_of_int !active);
  Mutex.unlock active_mu

(* Admission control: the acceptor takes the slot (or refuses) before
   the handler thread exists, so the thread count is bounded by
   [max_conns] rather than by how fast clients can connect. *)
let try_acquire ~max_conns =
  Mutex.lock active_mu;
  let ok = !active < max_conns in
  if ok then begin
    active := !active + 1;
    Obs.Metrics.set_gauge g_active (float_of_int !active)
  end;
  Mutex.unlock active_mu;
  ok

let respond_error fd msg =
  try
    let b = Bytes.of_string ("ZCER" ^ msg) in
    write_all fd b ~off:0 ~len:(Bytes.length b)
  with Unix.Unix_error _ -> ()

let conn_seq = Atomic.make 0

let handle_data_conn ~jobs fd =
  Obs.Metrics.incr m_conns;
  Fun.protect
    ~finally:(fun () ->
      adjust_active (-1);
      (try Unix.close fd with Unix.Unix_error _ -> ()))
  @@ fun () ->
  match
    let hdr = Bytes.create 10 in
    read_exact fd hdr 0 10;
    if Bytes.sub_string hdr 0 4 <> "ZCRQ" then failwith "bad request magic";
    let op = Char.code (Bytes.get hdr 4) in
    let codec =
      match Frame.codec_of_id (Char.code (Bytes.get hdr 5)) with
      | Some c -> c
      | None -> failwith "bad codec id"
    in
    let frame_size = Int32.to_int (Bytes.get_int32_le hdr 6) land 0xFFFFFFFF in
    if frame_size < 1 || frame_size > Frame.max_frame_size then
      failwith "bad frame size";
    (op, codec, frame_size)
  with
  | exception Failure msg ->
      Obs.Metrics.incr m_errors;
      respond_error fd msg
  | exception Unix.Unix_error (e, _, _) ->
      Obs.Metrics.incr m_errors;
      respond_error fd (Unix.error_message e)
  | op, codec, frame_size -> (
      let conn_id = Atomic.fetch_and_add conn_seq 1 in
      let t0 = Obs.now_ns () in
      let c = { fd; counter = m_bytes_in } in
      let req_bytes = ref 0 and resp_bytes = ref 0 in
      (* First payload bytes key the request's prefix bucket — the
         attacker-controlled part of a CRIME-style request is its
         start, and that is all the estimator conditions on. *)
      let prefix = Bytes.create 16 in
      let prefix_len = ref 0 in
      let read buf off len =
        let n = counted_read c buf off len in
        if n > 0 && !prefix_len < 16 then begin
          let take = min (16 - !prefix_len) n in
          Bytes.blit buf off prefix !prefix_len take;
          prefix_len := !prefix_len + take
        end;
        req_bytes := !req_bytes + n;
        n
      in
      let ok = Bytes.of_string "ZCOK" in
      write_all fd ok ~off:0 ~len:4;
      Obs.Metrics.add m_bytes_out 4;
      let write buf ~off ~len =
        counted_write c buf ~off ~len;
        resp_bytes := !resp_bytes + len
      in
      let outcome =
        match op with
        | 1 ->
            (try
               Frame.compress_stream ~frame_size ~jobs ~codec ~read ~write ();
               Ok ()
             with
            | Failure msg -> Error msg
            | Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))
        | 2 -> (
            match Frame.decompress_stream ~jobs ~read ~write () with
            | Ok () -> Ok ()
            | Error e -> Error (Zipchannel.Codec_error.to_string e)
            | exception Unix.Unix_error (e, _, _) ->
                Error (Unix.error_message e))
        | _ -> Error "bad op"
      in
      let wall_ns = Obs.now_ns () - t0 in
      Obs.Metrics.observe m_request_bytes !req_bytes;
      Obs.Metrics.observe h_request_ns wall_ns;
      let plaintext = if op = 1 then !req_bytes else !resp_bytes in
      Leak_audit.record_request
        {
          Leak_audit.conn = conn_id;
          op = (if op = 1 then "compress" else "decompress");
          req_codec = Frame.codec_name codec;
          frame_size;
          req_bytes = !req_bytes;
          resp_bytes = !resp_bytes;
          frames = (plaintext + frame_size - 1) / frame_size;
          req_bucket =
            (if !prefix_len > 0 then
               Leak_audit.prefix_bucket prefix ~len:!prefix_len
             else -1);
          wall_ns;
          ts_ns = Obs.now_ns ();
          status = (match outcome with Ok () -> "ok" | Error _ -> "error");
        };
      match outcome with
      | Ok () -> ()
      | Error _ ->
          (* The ZCOK tag is already on the wire, so the client cannot
             be told cleanly; cut the connection short instead of
             letting it look complete. *)
          Obs.Metrics.incr m_errors)

let http_response ~content_type body =
  Printf.sprintf
    "HTTP/1.1 200 OK\r\n\
     Content-Type: %s\r\n\
     Content-Length: %d\r\n\
     Connection: close\r\n\r\n%s"
    content_type (String.length body) body

let http_not_found =
  "HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"

let started_ns = ref 0

let healthz_body () =
  Mutex.lock active_mu;
  let active_now = !active in
  Mutex.unlock active_mu;
  Printf.sprintf
    "{\"status\": \"ok\", \"uptime_s\": %.1f, \"active_connections\": %d, \
     \"connections_total\": %d}"
    (float_of_int (Obs.now_ns () - !started_ns) /. 1e9)
    active_now
    (Obs.Metrics.counter_value m_conns)

let buildinfo_body =
  lazy
    (Printf.sprintf
       "{\"name\": \"zipchannel\", \"ocaml\": \"%s\", \"word_size\": %d, \
        \"os_type\": \"%s\", \"max_frame_size\": %d, \"codecs\": [%s]}"
       Sys.ocaml_version Sys.word_size Sys.os_type Frame.max_frame_size
       (String.concat ", "
          (List.map (fun n -> "\"" ^ n ^ "\"") Frame.codec_names)))

let handle_metrics_conn fd =
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  try
    let buf = Bytes.create 4096 in
    let n = Unix.read fd buf 0 (Bytes.length buf) in
    let req = Bytes.sub_string buf 0 n in
    let path =
      match String.split_on_char ' ' req with
      | _meth :: path :: _ -> path
      | _ -> "/"
    in
    Obs.Metrics.incr m_scrapes;
    (* Summarise request latency as gauges at scrape time: the log2
       histogram is always exported in full; p50/p95 midpoint estimates
       ride along for dashboards that want one number. *)
    (match
       List.assoc_opt "serve.request_ns"
         (Obs.Metrics.snapshot ()).Obs.Metrics.histograms
     with
    | Some h when h.Obs.Metrics.count > 0 ->
        Obs.Metrics.set_gauge g_request_p50 (Obs.Metrics.approx_quantile h 0.5);
        Obs.Metrics.set_gauge g_request_p95 (Obs.Metrics.approx_quantile h 0.95)
    | _ -> ());
    let resp =
      match path with
      | "/metrics" ->
          http_response ~content_type:"text/plain; version=0.0.4"
            (Zipchannel.Obs_export.Prom.exposition (Obs.Metrics.snapshot ()))
      | "/metrics.json" ->
          http_response ~content_type:"application/json"
            (Obs.Metrics.snapshot_to_json (Obs.Metrics.snapshot ()))
      | "/healthz" ->
          http_response ~content_type:"application/json" (healthz_body ())
      | "/buildinfo" ->
          http_response ~content_type:"application/json"
            (Lazy.force buildinfo_body)
      | _ -> http_not_found
    in
    let b = Bytes.of_string resp in
    write_all fd b ~off:0 ~len:(Bytes.length b)
  with Unix.Unix_error _ -> ()

let stop = ref false

let listener port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 64;
  fd

let serve ?(max_conns = 64) ?audit ~port ~metrics_port ~jobs () =
  Obs.set_enabled true;
  started_ns := Obs.now_ns ();
  (* Always-on runtime observatory: the sampler domain ticks at 1 kHz,
     feeding prof.self.* span shares and the runtime.* GC plane into the
     same registry the metrics listener exports. *)
  Obs_prof.start ();
  let audit_commit =
    match audit with
    | None -> None
    | Some path ->
        (* Write-through a .tmp sibling, renamed into place on clean
           shutdown, so a crash mid-stream never leaves a truncated
           file at the published path. *)
        let oc, commit = Zipchannel.Obs_export.Sink.open_atomic ~path in
        Leak_audit.set_enabled true;
        Leak_audit.set_sink (Leak_audit.Jsonl oc);
        Some commit
  in
  stop := false;
  let on_signal _ = stop := true in
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let data_sock = listener port in
  let metrics_sock = listener metrics_port in
  Printf.printf "zc serve: data on 127.0.0.1:%d, metrics on 127.0.0.1:%d\n%!"
    port metrics_port;
  let threads = ref [] in
  let spawn f x = threads := Thread.create f x :: !threads in
  while not !stop do
    match Unix.select [ data_sock; metrics_sock ] [] [] 0.25 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready, _, _ ->
        List.iter
          (fun sock ->
            match Unix.accept sock with
            | exception Unix.Unix_error _ -> ()
            | conn, _ ->
                if sock = data_sock then begin
                  if try_acquire ~max_conns then
                    spawn (handle_data_conn ~jobs) conn
                  else begin
                    Obs.Metrics.incr m_rejected;
                    spawn
                      (fun conn ->
                        Fun.protect
                          ~finally:(fun () ->
                            try Unix.close conn with Unix.Unix_error _ -> ())
                          (fun () ->
                            respond_error conn "busy";
                            (* Half-close and drain what the client has
                               already uploaded (bounded), so the reply
                               reaches it instead of being clobbered by
                               a reset from unread inbound data. *)
                            try
                              Unix.shutdown conn Unix.SHUTDOWN_SEND;
                              Unix.setsockopt_float conn Unix.SO_RCVTIMEO 2.0;
                              let junk = Bytes.create 65536 in
                              let budget = ref 256 in
                              while
                                !budget > 0
                                && Unix.read conn junk 0 (Bytes.length junk) > 0
                              do
                                decr budget
                              done
                            with Unix.Unix_error _ -> ()))
                      conn
                  end
                end
                else spawn handle_metrics_conn conn)
          ready
  done;
  (try Unix.close data_sock with Unix.Unix_error _ -> ());
  (try Unix.close metrics_sock with Unix.Unix_error _ -> ());
  List.iter Thread.join !threads;
  Obs_prof.stop ();
  (match audit_commit with
  | Some commit ->
      Leak_audit.publish_estimate ();
      Leak_audit.set_sink Leak_audit.Null;
      commit ()
  | None -> ());
  Printf.printf "zc serve: %d connection(s) served, shutting down\n%!"
    (Obs.Metrics.counter_value m_conns)

(* ------------------------------------------------------------------ *)
(* Single-shot compress request against a daemon: send one plaintext,
   return the complete framed response.  This is the [zc leak oracle]
   probe — what a network attacker does, over the loopback. *)

let request_compress ~connect ~codec ~frame_size payload =
  match parse_host_port connect with
  | Error _ as e -> e
  | Ok (host, port) -> (
      match resolve host port with
      | Error _ as e -> e
      | Ok addr ->
          let fd =
            Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0
          in
          Fun.protect
            ~finally:(fun () ->
              try Unix.close fd with Unix.Unix_error _ -> ())
          @@ fun () ->
          Unix.connect fd addr;
          let hdr = Bytes.create 10 in
          Bytes.blit_string "ZCRQ" 0 hdr 0 4;
          Bytes.set hdr 4 '\001';
          Bytes.set hdr 5 (Char.chr (Frame.codec_id codec));
          Bytes.set_int32_le hdr 6 (Int32.of_int frame_size);
          write_all fd hdr ~off:0 ~len:10;
          let uploader =
            Thread.create
              (fun () ->
                try
                  write_all fd payload ~off:0 ~len:(Bytes.length payload);
                  Unix.shutdown fd Unix.SHUTDOWN_SEND
                with Unix.Unix_error _ -> ())
              ()
          in
          let tag = Bytes.create 4 in
          let result =
            match read_exact fd tag 0 4 with
            | exception Failure msg -> Error msg
            | () ->
                let b = Buffer.create 4096 in
                let buf = Bytes.create 65536 in
                let rec drain () =
                  let n = Unix.read fd buf 0 (Bytes.length buf) in
                  if n > 0 then begin
                    Buffer.add_subbytes b buf 0 n;
                    drain ()
                  end
                in
                drain ();
                if Bytes.to_string tag = "ZCOK" then Ok (Buffer.to_bytes b)
                else if Bytes.to_string tag = "ZCER" then
                  Error ("server: " ^ Buffer.contents b)
                else Error "malformed response from server"
          in
          Thread.join uploader;
          result)

(* ------------------------------------------------------------------ *)
(* Minimal HTTP GET against the daemon's metrics listener — what
   [zc obs top --connect] polls.  Returns the response body of a 200. *)

let find_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = if i + n > m then None
    else if String.sub s i n = sub then Some i else go (i + 1) in
  go 0

let http_get ~connect ~path =
  match parse_host_port connect with
  | Error _ as e -> e
  | Ok (host, port) -> (
      match resolve host port with
      | Error _ as e -> e
      | Ok addr -> (
          try
            let fd =
              Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0
            in
            Fun.protect
              ~finally:(fun () ->
                try Unix.close fd with Unix.Unix_error _ -> ())
            @@ fun () ->
            Unix.connect fd addr;
            let req =
              Printf.sprintf
                "GET %s HTTP/1.1\r\nHost: %s\r\nConnection: close\r\n\r\n"
                path host
            in
            let b = Bytes.of_string req in
            write_all fd b ~off:0 ~len:(Bytes.length b);
            let acc = Buffer.create 4096 in
            let buf = Bytes.create 65536 in
            let rec drain () =
              let n = Unix.read fd buf 0 (Bytes.length buf) in
              if n > 0 then begin
                Buffer.add_subbytes acc buf 0 n;
                drain ()
              end
            in
            drain ();
            let resp = Buffer.contents acc in
            match find_sub ~sub:"\r\n\r\n" resp with
            | None -> Error "malformed HTTP response"
            | Some i ->
                let body =
                  String.sub resp (i + 4) (String.length resp - i - 4)
                in
                let status =
                  match String.split_on_char ' ' resp with
                  | _http :: code :: _ -> code
                  | _ -> "?"
                in
                if status = "200" then Ok body
                else Error (Printf.sprintf "HTTP %s from %s" status path)
          with Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)))
