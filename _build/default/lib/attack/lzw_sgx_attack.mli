(** End-to-end controlled-channel attack on LZW compression in an enclave.

    The paper extracts the Ncompress input from a trace of Listing 2's
    hash-table probes "with a Python script that simulates the attack"
    (Section IV-C); this module mounts the extraction through the same
    microarchitectural machinery as the Bzip2 attack: an mprotect
    single-stepping state machine over the input buffer and [htab], the
    page-fault channel for page numbers, and the {!Page_channel}
    Prime+Probe for the in-page offset of the {e first} probe of every
    lookup.

    Recovery runs offline over the collected candidate sets
    ({!Recovery.lzw_recover_candidates_auto}): for each of the 2^3
    first-byte hypotheses a mirrored dictionary filters candidates by
    predicted-[ent] consistency (bits 3-8 of the index come only from
    [ent]); the hypothesis whose mirror stays synchronised — including
    through later recurrences of the first byte — wins. *)

type result = {
  recovered : bytes;
  byte_accuracy : float;
  bit_accuracy : float;
  lookups : int;  (** dictionary lookups observed *)
  lost_readings : int;
  faults : int;
  frame_remaps : int;
}

val htab_base : int
(** Virtual base of the victim's hash table (line- and page-aligned, as in
    Ncompress). *)

val input_base : int

val program : bytes -> Zipchannel_trace.Event.t array
(** The victim's access sequence: per input byte, the buffer read, each
    hash-table probe, and the insert store on a miss. *)

val run : ?config:Attack_config.t -> bytes -> result
