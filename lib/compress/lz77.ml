module Obs = Zipchannel_obs.Obs
module Bigstring = Zipchannel_buf.Bigstring

let m_literals = Obs.Metrics.counter "kernel.lz77.literals"
let m_matches = Obs.Metrics.counter "kernel.lz77.matches"
let h_match_len = Obs.Metrics.histogram "kernel.lz77.match_len"

let min_match = 3
let max_match = 258
let window_size = 32768
let hash_bits = 15
let hash_mask = (1 lsl hash_bits) - 1

let update_hash h c = ((h lsl 5) lxor c) land hash_mask

let hash_of_triple c0 c1 c2 = update_hash (update_hash (update_hash 0 c0) c1) c2

type token = Literal of char | Match of { length : int; distance : int }

type strategy = Greedy | Lazy

let pp_token ppf = function
  | Literal c -> Format.fprintf ppf "lit %C" c
  | Match { length; distance } ->
      Format.fprintf ppf "match len=%d dist=%d" length distance

let hash_head_trace input =
  let n = Bytes.length input in
  if n < min_match then [||]
  else begin
    let byte i = Char.code (Bytes.get input i) in
    (* ins_h is seeded with the first two bytes, then each INSERT_STRING
       rolls in the byte two ahead of the insertion point. *)
    let h = ref (update_hash (update_hash 0 (byte 0)) (byte 1)) in
    Array.init (n - 2) (fun k ->
        h := update_hash !h (byte (k + 2));
        !h)
  end

(* Growable token accumulator shared by both tokenizers: the output
   token sequence is a list, but the hot loop must not cons per token. *)
type emitter = { mutable buf : token array; mutable n : int }

let emitter () = { buf = Array.make 512 (Literal '\000'); n = 0 }

let emit e tok =
  let cap = Array.length e.buf in
  if e.n = cap then begin
    let bigger = Array.make (2 * cap) (Literal '\000') in
    Array.blit e.buf 0 bigger 0 cap;
    e.buf <- bigger
  end;
  Array.unsafe_set e.buf e.n tok;
  e.n <- e.n + 1

(* Telemetry over the finished token array: a single extra pass, run
   only when metrics are on, so the disabled path is untouched. *)
let telemetry e =
  if Obs.enabled () then begin
    let lits = ref 0 and matches = ref 0 in
    for i = 0 to e.n - 1 do
      match e.buf.(i) with
      | Literal _ -> incr lits
      | Match { length; _ } ->
          incr matches;
          Obs.Metrics.observe h_match_len length
    done;
    Obs.Metrics.add m_literals !lits;
    Obs.Metrics.add m_matches !matches
  end

let finish e =
  telemetry e;
  let buf = e.buf in
  let rec build i acc = if i < 0 then acc else build (i - 1) (buf.(i) :: acc) in
  build (e.n - 1) []

(* The retained byte-at-a-time reference tokenizer.  [tokenize] below
   must produce the identical token sequence for every input; the
   differential suite checks exactly that. *)
let tokenize_ref ?(strategy = Greedy) ?(max_chain = 128) input =
  let n = Bytes.length input in
  let byte i = Char.code (Bytes.unsafe_get input i) in
  let head = Array.make (hash_mask + 1) (-1) in
  let prev = Array.make (max 1 n) (-1) in
  let insert pos =
    if pos + min_match <= n then begin
      let h = hash_of_triple (byte pos) (byte (pos + 1)) (byte (pos + 2)) in
      Array.unsafe_set prev pos (Array.unsafe_get head h);
      Array.unsafe_set head h pos
    end
  in
  let match_length pos cand =
    let limit = min max_match (n - pos) in
    let len = ref 0 in
    while
      !len < limit
      && Char.code (Bytes.unsafe_get input (cand + !len))
         = Char.code (Bytes.unsafe_get input (pos + !len))
    do
      incr len
    done;
    !len
  in
  let best_match pos =
    if pos + min_match > n then None
    else begin
      let h = hash_of_triple (byte pos) (byte (pos + 1)) (byte (pos + 2)) in
      let best_len = ref 0 and best_pos = ref (-1) in
      let cand = ref (Array.unsafe_get head h) and chain = ref max_chain in
      while !cand >= 0 && !chain > 0 do
        if pos - !cand <= window_size then begin
          let len = match_length pos !cand in
          if len > !best_len then begin
            best_len := len;
            best_pos := !cand
          end;
          cand := Array.unsafe_get prev !cand;
          decr chain
        end
        else cand := -1
      done;
      if !best_len >= min_match then
        Some (!best_len, pos - !best_pos)
      else None
    end
  in
  let e = emitter () in
  (match strategy with
  | Greedy ->
      let pos = ref 0 in
      while !pos < n do
        match best_match !pos with
        | Some (length, distance) ->
            emit e (Match { length; distance });
            for p = !pos to !pos + length - 1 do insert p done;
            pos := !pos + length
        | None ->
            emit e (Literal (Bytes.get input !pos));
            insert !pos;
            incr pos
      done
  | Lazy ->
      (* zlib's deflate_slow: hold a match found at pos-1 and abandon it
         for a single literal when pos matches strictly longer. *)
      let pos = ref 0 in
      let pending = ref None (* best match at !pos - 1 *) in
      while !pos < n do
        let m = best_match !pos in
        insert !pos;
        (match !pending with
        | None -> (
            match m with
            | Some _ ->
                pending := m;
                incr pos
            | None ->
                emit e (Literal (Bytes.get input !pos));
                incr pos)
        | Some (plen, pdist) ->
            let better =
              match m with Some (len, _) -> len > plen | None -> false
            in
            if better then begin
              emit e (Literal (Bytes.get input (!pos - 1)));
              pending := m;
              incr pos
            end
            else begin
              emit e (Match { length = plen; distance = pdist });
              let next = !pos - 1 + plen in
              for p = !pos + 1 to next - 1 do insert p done;
              pos := next;
              pending := None
            end)
      done;
      (match !pending with
      | Some (plen, pdist) -> emit e (Match { length = plen; distance = pdist })
      | None -> ()));
  finish e

(* Word-at-a-time tokenizer.  The input is staged once into an off-heap
   bigstring; match extension is then a memcmp-style 64-bit
   [common_prefix], and a candidate is rejected with a two-byte probe
   ending at offset [best_len] (zlib's end-byte check: beating the
   current best requires those bytes to match, so skipping the scan when
   they differ cannot change which candidate wins).  Token output is
   identical to [tokenize_ref] — same hash chains, same tie-breaks. *)
let tokenize_emitter ?(strategy = Greedy) ?(max_chain = 128) input =
  let n = Bytes.length input in
  let big = Bigstring.of_bytes input in
  (* Plain [Bytes] loads for the hash/insert path: cheaper than going
     through the bigstring's custom block, and the values are the same
     bytes either way.  [big] serves the word-at-a-time probes. *)
  let byte i = Char.code (Bytes.unsafe_get input i) in
  let head = Array.make (hash_mask + 1) (-1) in
  let prev = Array.make (max 1 n) (-1) in
  (* Both strategies insert every position exactly once in strictly
     increasing order, so the triple hash rolls: seeded with the first
     two bytes, each insert folds in the byte two ahead (the same
     recurrence [hash_head_trace] documents), replacing the 3-byte
     rehash of the reference tokenizer. *)
  let ins_h =
    ref
      (if n >= min_match then update_hash (update_hash 0 (byte 0)) (byte 1)
       else 0)
  in
  let insert pos =
    if pos + min_match <= n then begin
      let h = update_hash !ins_h (byte (pos + 2)) in
      ins_h := h;
      Array.unsafe_set prev pos (Array.unsafe_get head h);
      Array.unsafe_set head h pos
    end
  in
  (* Packed as [len lsl 16 lor dist] (len <= 258, dist <= 32768 fits in
     16 bits), -1 for no match: the chain walk allocates nothing. *)
  let best_match pos =
    if pos + min_match > n then -1
    else begin
      let limit = min max_match (n - pos) in
      let h = hash_of_triple (byte pos) (byte (pos + 1)) (byte (pos + 2)) in
      let best_len = ref 0 and best_pos = ref (-1) in
      let first = byte pos in
      (* The 16-bit word a candidate must match at [pos + best_len - 1]
         to beat the current best (zlib's scan_end1/scan_end): any match
         longer than [best_len] agrees with [pos] on bytes 0..best_len,
         which includes both bytes of this word.  Refreshed whenever
         [best_len] moves; valid once [best_len >= 1] (before that a
         single byte probe at offset 0 plays the same role).  In-bounds:
         the loop guard keeps [best_len < limit], so
         [pos + best_len <= n - 1] and [cand + best_len < pos + best_len]. *)
      let want16 = ref 0 in
      let cand = ref (Array.unsafe_get head h) and chain = ref max_chain in
      (* Once [best_len = limit] no candidate can match strictly longer,
         so stopping early leaves the winner unchanged. *)
      while !cand >= 0 && !chain > 0 && !best_len < limit do
        if pos - !cand <= window_size then begin
          let bl = !best_len in
          let probe_hit =
            if bl = 0 then byte !cand = first
            else Bigstring.get16u big (!cand + bl - 1) = !want16
          in
          if probe_hit then begin
            let len = Bigstring.common_prefix big !cand pos ~limit in
            if len > bl then begin
              best_len := len;
              best_pos := !cand;
              if len < limit then want16 := Bigstring.get16u big (pos + len - 1)
            end
          end;
          cand := Array.unsafe_get prev !cand;
          decr chain
        end
        else cand := -1
      done;
      if !best_len >= min_match then (!best_len lsl 16) lor (pos - !best_pos)
      else -1
    end
  in
  let e = emitter () in
  (match strategy with
  | Greedy ->
      let pos = ref 0 in
      while !pos < n do
        let m = best_match !pos in
        if m >= 0 then begin
          let length = m lsr 16 and distance = m land 0xffff in
          emit e (Match { length; distance });
          for p = !pos to !pos + length - 1 do insert p done;
          pos := !pos + length
        end
        else begin
          emit e (Literal (Bytes.get input !pos));
          insert !pos;
          incr pos
        end
      done
  | Lazy ->
      let pos = ref 0 in
      let pending = ref (-1) (* packed best match at !pos - 1 *) in
      while !pos < n do
        let m = best_match !pos in
        insert !pos;
        if !pending < 0 then
          if m >= 0 then begin
            pending := m;
            incr pos
          end
          else begin
            emit e (Literal (Bytes.get input !pos));
            incr pos
          end
        else begin
          let plen = !pending lsr 16 and pdist = !pending land 0xffff in
          if m >= 0 && m lsr 16 > plen then begin
            emit e (Literal (Bytes.get input (!pos - 1)));
            pending := m;
            incr pos
          end
          else begin
            emit e (Match { length = plen; distance = pdist });
            let next = !pos - 1 + plen in
            for p = !pos + 1 to next - 1 do insert p done;
            pos := next;
            pending := -1
          end
        end
      done;
      if !pending >= 0 then
        emit e
          (Match { length = !pending lsr 16; distance = !pending land 0xffff }));
  telemetry e;
  e

let tokenize ?strategy ?max_chain input =
  let e = tokenize_emitter ?strategy ?max_chain input in
  let buf = e.buf in
  let rec build i acc = if i < 0 then acc else build (i - 1) (buf.(i) :: acc) in
  build (e.n - 1) []

let tokenize_array ?strategy ?max_chain input =
  let e = tokenize_emitter ?strategy ?max_chain input in
  Array.sub e.buf 0 e.n

let detokenize tokens =
  let out = Buffer.create 256 in
  List.iter
    (fun token ->
      match token with
      | Literal c -> Buffer.add_char out c
      | Match { length; distance } ->
          let start = Buffer.length out - distance in
          if start < 0 then invalid_arg "Lz77.detokenize: distance too large";
          (* Byte-by-byte copy so that overlapping matches self-extend. *)
          for k = 0 to length - 1 do
            Buffer.add_char out (Buffer.nth out (start + k))
          done)
    tokens;
  Buffer.to_bytes out
