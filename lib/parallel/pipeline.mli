(** A pipelined parallel stage with bounded, order-preserving queues.

    [run ~jobs ~produce ~work ~consume ()] drives a three-stage
    pipeline: the calling domain alternates between pulling items from
    [produce] and handing finished results to [consume], while [jobs]
    worker domains apply [work] to items in flight.  At most [capacity]
    items are in flight at once (backpressure: production stops until
    the consumer drains), and [consume] sees results strictly in
    production order — so for pure [work] the observable output is
    byte-identical to the [jobs = 1] run, where everything happens
    sequentially in the calling domain with no spawning.

    [produce ~seq] is called with consecutive sequence numbers starting
    at 0 and returns [None] at end of stream (after which it is never
    called again).  The sequence number lets a producer address a ring
    of [capacity] reusable buffers: slot [seq mod capacity] is
    guaranteed free, because the window invariant keeps sequence
    [seq - capacity] consumed before [seq] is produced.

    [work] must be safe to run concurrently with itself, [produce] and
    [consume]; [produce] and [consume] only ever run in the calling
    domain and may share state with each other freely.

    If any stage raises, the pipeline drains (no further [work] or
    [consume] calls on other items), all domains are joined, and the
    first failure is re-raised in the caller.

    Obs metrics: [pipeline.items] counts items entering the pipeline
    and [pipeline.queue_depth] is a histogram of the in-flight count
    observed at each enqueue. *)

val run :
  jobs:int ->
  ?capacity:int ->
  produce:(seq:int -> 'a option) ->
  work:('a -> 'b) ->
  consume:(seq:int -> 'b -> unit) ->
  unit ->
  unit
(** [capacity] defaults to [2 * jobs] and is clamped to at least
    [jobs + 1] so workers are never starved by the window. *)
