lib/attack/page_channel.ml: Array Attack_config Hashtbl Int List Noise Prng Set Zipchannel_cache Zipchannel_sgx Zipchannel_util
