lib/trace/layout.ml: List
