(** The end-to-end ZipChannel attack on Bzip2 inside SGX (paper Section V).

    The attacker plays the untrusted OS: it single-steps the enclave's
    Listing-3 loop with an mprotect controlled channel (the S0–S4 state
    machine of Fig. 5), learns the touched [ftab] page from each fault,
    recovers the offset inside the page with a Prime+Probe over the 64
    lines of the page's frame, and feeds the per-iteration line addresses
    to {!Recovery.bzip2_recover}.

    The two techniques the paper introduces are both modelled and can be
    ablated: Intel CAT reduces the attacker's class of service to a single
    way (deterministic eviction, no cross-core pollution), and frame
    selection remaps each [ftab] page to a physical frame whose cache sets
    stay quiet during the state-transition machinery. *)

type config = Attack_config.t = {
  use_cat : bool;
  use_frame_selection : bool;
  frame_candidates : int;  (** remap attempts before the paper's timeout *)
  background_noise : bool;  (** other-core LLC traffic present *)
  cache_config : Zipchannel_cache.Cache.config;
  timing : Zipchannel_cache.Timing.t;
  noise_config : Noise.config;
  seed : int;
}

val default_config : config
(** Both techniques on, background noise on, default cache and timing. *)

type result = {
  recovered : bytes;
  byte_accuracy : float;  (** fraction of bytes exactly recovered *)
  bit_accuracy : float;  (** the paper's headline metric: data bits *)
  observations : int list array;
      (** per-iteration candidate line addresses (empty = lost reading) *)
  lost_readings : int;  (** iterations with no usable probe result *)
  faults : int;  (** controlled-channel page faults taken *)
  frame_remaps : int;  (** frames tried during frame selection *)
}

val run : ?config:config -> bytes -> result
(** Attack one block while "the enclave" builds its frequency table over
    it.  The block is the secret; the result reports how much of it the
    cache channel recovered. *)
