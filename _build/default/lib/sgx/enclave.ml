type fault = { page_addr : int; kind : Zipchannel_trace.Event.kind }

type outcome = Done | Fault of fault | Executed

type t = {
  program : Zipchannel_trace.Event.t array;
  page_table : Page_table.t;
  cache : Zipchannel_cache.Cache.t;
  cos : int;
  mutable pc : int;
  mutable executed : int;
}

let create ?(cos = 0) ~program ~page_table ~cache () =
  { program; page_table; cache; cos; pc = 0; executed = 0 }

let page_mask = lnot (Page_table.page_size - 1)

let step t =
  if t.pc >= Array.length t.program then Done
  else begin
    let ev = t.program.(t.pc) in
    let first = Page_table.vpage_of ev.Zipchannel_trace.Event.addr in
    let last = Page_table.vpage_of (ev.addr + max 1 ev.size - 1) in
    let rec blocked p =
      if p > last then None
      else if not (Page_table.is_accessible t.page_table ~vpage:p) then Some p
      else blocked (p + 1)
    in
    match blocked first with
    | Some vpage ->
        (* SGX reports the fault with the page offset masked. *)
        let addr_on_page =
          if vpage = first then ev.addr else vpage lsl Page_table.page_bits
        in
        Fault { page_addr = addr_on_page land page_mask; kind = ev.kind }
    | None ->
        let phys = Page_table.phys_of t.page_table ev.addr in
        ignore
          (Zipchannel_cache.Cache.access t.cache ~cos:t.cos ~owner:Zipchannel_cache.Cache.Victim phys);
        t.pc <- t.pc + 1;
        t.executed <- t.executed + 1;
        Executed
  end

let rec run_to_fault t =
  match step t with
  | Done -> Done
  | Fault f -> Fault f
  | Executed -> run_to_fault t

let pc t = t.pc

let finished t = t.pc >= Array.length t.program

let executed_count t = t.executed
