lib/taintchannel/trace_diff.ml: Format List String
