(** Page table with revocable permissions: the OS-level mechanism behind
    the controlled-channel attack (Xu et al., and the paper's Section V-A
    [mprotect]-based variant).

    The attacker plays the OS: it maps virtual pages to physical frames of
    its choosing (the frame-selection technique needs exactly this) and
    revokes/restores access per page.  The enclave's accesses fault on
    revoked pages, and the fault reveals the page-aligned address. *)

val page_bits : int
(** 12: 4 KiB pages. *)

val page_size : int

type t

val create : unit -> t

val vpage_of : int -> int
(** Virtual address to virtual page number. *)

val map : t -> vpage:int -> frame:int -> unit
(** Install or change a mapping.  Pages without an explicit mapping are
    identity-mapped (frame = vpage). *)

val frame_of : t -> vpage:int -> int

val phys_of : t -> int -> int
(** Translate a virtual byte address. *)

val protect : t -> vpage:int -> unit
(** Revoke all access ([mprotect(PROT_NONE)]). *)

val protect_range : t -> addr:int -> size:int -> unit
(** Revoke every page overlapping [addr, addr+size). *)

val unprotect : t -> vpage:int -> unit

val unprotect_range : t -> addr:int -> size:int -> unit

val is_accessible : t -> vpage:int -> bool
