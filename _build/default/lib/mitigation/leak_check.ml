module Block_sort = Zipchannel_compress.Block_sort

let plain_histogram_line_trace block =
  Array.map (fun j -> j * 4 / 64) (Block_sort.ftab_indices block)

let first_difference a b =
  let na = Array.length a and nb = Array.length b in
  let n = min na nb in
  let rec go i =
    if i >= n then if na = nb then None else Some n
    else if a.(i) <> b.(i) then Some i
    else go (i + 1)
  in
  go 0

let constant_trace f ~inputs =
  match inputs with
  | [] | [ _ ] -> invalid_arg "Leak_check.constant_trace: need >= 2 inputs"
  | first :: rest ->
      let reference = f first in
      List.for_all (fun input -> first_difference reference (f input) = None) rest
