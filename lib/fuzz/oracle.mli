(** The oracles: what a decoder is and is not allowed to do.

    Two modes.  {!roundtrip} drives the differential oracle on a valid
    stream: the safe decoder must return [Ok] with exactly the original
    plaintext, and the historical exception API must agree byte for
    byte.  {!check} drives the robustness oracle on a (usually mutated)
    stream: the safe decoder must return [Ok] or a structured [Error] —
    any escaped exception is a crash — and when it does decode, the
    output must stay within the bomb cap and the work budget. *)

type verdict =
  | Accepted  (** decoded cleanly (round trips on valid input) *)
  | Rejected of Zipchannel_compress.Codec_error.t
      (** structured error — the intended response to malformed input *)
  | Crash of { exn : string }
      (** an exception escaped the safe decode API, or the exception API
          raised something outside its documented contract *)
  | Mismatch of { detail : string }
      (** differential failure: round-trip output differed from the
          plaintext, or the two decode APIs disagreed *)
  | Bomb of { output_len : int }
      (** output exceeded [bomb_cap] for a small input *)
  | Overbudget of { elapsed_ms : float }
      (** the case exceeded its work budget *)

val verdict_label : verdict -> string
(** Stable one-word label: [accepted], [rejected], [crash], [mismatch],
    [bomb], [overbudget]. *)

val is_failure : verdict -> bool
(** True for [Crash], [Mismatch], [Bomb] and [Overbudget]. *)

val bomb_cap : int
(** Maximum plausible decode output for corpus-sized inputs (4 MiB). *)

val check : Codecs.t -> budget_ms:float -> bytes -> verdict * float
(** Robustness + differential oracle on arbitrary bytes.  Returns the
    verdict and the elapsed milliseconds. *)

val roundtrip : Codecs.t -> budget_ms:float -> bytes -> verdict * float
(** [roundtrip codec ~budget_ms plain] compresses [plain] and checks the
    full decode path restores it exactly. *)
