let eof_code = 256
let first_code = 257
let min_bits = 9
let max_bits = 16
let htab_bits = 17

let htab_size = 1 lsl htab_bits

let code_limit = 1 lsl max_bits

let hash ~c ~ent = ((c lsl 9) lxor ent) land (htab_size - 1)

type probe = { hp : int; first : bool; c : int; ent : int }

(* The container stores the decompressed length up front instead of an
   in-band EOF code: with a known code count the decoder's dictionary lags
   the encoder's by exactly one entry at every read, which makes the code
   width bumps provably synchronized (encoder checks [free_ent > maxcode],
   decoder [free_ent + 1 > maxcode]).  Code 256 stays reserved, as in
   (N)compress. *)

(* The encoder walks the input byte stream keeping [ent], the code of the
   longest dictionary string matching the pending input, exactly like
   compress(1)'s main loop.  The stepper exposes one step of that loop so
   that the attacker's recovery algorithm (paper Section IV-C) can mirror
   the dictionary state from recovered plaintext. *)
module Stepper = struct
  type t = {
    htab : int array;
    codetab : int array;
    mutable free_ent : int;
    mutable n_bits : int;
    mutable ent : int;
  }

  let create ~first =
    if first < 0 || first > 255 then invalid_arg "Lzw.Stepper.create: byte";
    {
      htab = Array.make htab_size (-1);
      codetab = Array.make htab_size 0;
      free_ent = first_code;
      n_bits = min_bits;
      ent = first;
    }

  let copy t =
    {
      htab = Array.copy t.htab;
      codetab = Array.copy t.codetab;
      free_ent = t.free_ent;
      n_bits = t.n_bits;
      ent = t.ent;
    }

  let ent t = t.ent

  (* Read-only lookup: the code for the (ent, c) pair, if present.  Used
     by the attack's recovery to explore repair hypotheses without
     mutating the mirror. *)
  let probe_hit t ~ent ~c =
    let fc = (ent lsl 8) lor c in
    let hp = ref (hash ~c ~ent) in
    let disp = if !hp = 0 then 1 else (htab_size - !hp) lor 1 in
    let result = ref None and finished = ref false in
    while not !finished do
      if t.htab.(!hp) = fc then begin
        result := Some t.codetab.(!hp);
        finished := true
      end
      else if t.htab.(!hp) < 0 then finished := true
      else begin
        hp := !hp - disp;
        if !hp < 0 then hp := !hp + htab_size
      end
    done;
    !result

  let maxcode t = (1 lsl t.n_bits) - 1

  (* Width of the next emitted code, bumping the running width exactly as
     compress(1) does right before output. *)
  let emit_width t =
    if t.free_ent > maxcode t && t.n_bits < max_bits then
      t.n_bits <- t.n_bits + 1;
    t.n_bits

  let feed t c =
    if c < 0 || c > 255 then invalid_arg "Lzw.Stepper.feed: byte";
    let fc = (t.ent lsl 8) lor c in
    (* Open-addressed lookup with compress(1)'s secondary probe.  The
       original table size is prime (69001); ours is a power of two to
       keep the paper's exact index formula, so the displacement is forced
       odd to stay coprime with the table size and cycle every slot. *)
    let hp = ref (hash ~c ~ent:t.ent) in
    let disp = if !hp = 0 then 1 else (htab_size - !hp) lor 1 in
    let probes = ref [] in
    let found = ref false and missing = ref false in
    let first = ref true in
    while (not !found) && not !missing do
      probes := { hp = !hp; first = !first; c; ent = t.ent } :: !probes;
      first := false;
      if t.htab.(!hp) = fc then found := true
      else if t.htab.(!hp) < 0 then missing := true
      else begin
        hp := !hp - disp;
        if !hp < 0 then hp := !hp + htab_size
      end
    done;
    let emitted =
      if !found then begin
        t.ent <- t.codetab.(!hp);
        None
      end
      else begin
        let code = t.ent and width = emit_width t in
        if t.free_ent < code_limit then begin
          t.htab.(!hp) <- fc;
          t.codetab.(!hp) <- t.free_ent;
          t.free_ent <- t.free_ent + 1
        end;
        t.ent <- c;
        Some (code, width)
      end
    in
    (List.rev !probes, emitted)

  let flush t = (t.ent, emit_width t)
end

module Obs = Zipchannel_obs.Obs

let m_bytes_in = Obs.Metrics.counter "kernel.lzw.bytes_in"
let m_bytes_out = Obs.Metrics.counter "kernel.lzw.bytes_out"
let m_probes = Obs.Metrics.counter "kernel.lzw.htab_probes"

let compress_with_probes input =
  Obs.with_span "lzw.compress"
    ~attrs:[ ("bytes", string_of_int (Bytes.length input)) ]
  @@ fun () ->
  let n = Bytes.length input in
  let w = Bitio.Writer.create () in
  Bitio.Writer.add_bits_lsb w ~value:(n land 0xffff) ~count:16;
  Bitio.Writer.add_bits_lsb w ~value:(n lsr 16) ~count:16;
  let probes = ref [] in
  if n > 0 then begin
    let st = Stepper.create ~first:(Char.code (Bytes.get input 0)) in
    for i = 1 to n - 1 do
      let step_probes, emitted = Stepper.feed st (Char.code (Bytes.get input i)) in
      List.iter (fun p -> probes := p :: !probes) step_probes;
      match emitted with
      | Some (code, width) -> Bitio.Writer.add_bits_lsb w ~value:code ~count:width
      | None -> ()
    done;
    let code, width = Stepper.flush st in
    Bitio.Writer.add_bits_lsb w ~value:code ~count:width
  end;
  let out = Bitio.Writer.to_bytes w in
  Obs.Metrics.add m_bytes_in n;
  Obs.Metrics.add m_bytes_out (Bytes.length out);
  if Obs.enabled () then Obs.Metrics.add m_probes (List.length !probes);
  (out, List.rev !probes)

(* The plain compressor runs the same loop as {!Stepper.feed} but never
   materialises the probe trace: at 1 MiB the per-step probe records and
   cons cells (~1.2M of each) dominate the runtime and crater throughput
   to a quarter of the small-input rate.  The probe *count* is kept in a
   plain int so [kernel.lzw.htab_probes] reports exactly the same value
   as the recording path — one tick per table slot inspected. *)
let compress input =
  Obs.with_span "lzw.compress"
    ~attrs:[ ("bytes", string_of_int (Bytes.length input)) ]
  @@ fun () ->
  let n = Bytes.length input in
  let w = Bitio.Writer.create () in
  Bitio.Writer.add_bits_lsb w ~value:(n land 0xffff) ~count:16;
  Bitio.Writer.add_bits_lsb w ~value:(n lsr 16) ~count:16;
  let probe_count = ref 0 in
  if n > 0 then begin
    let htab = Array.make htab_size (-1) in
    let codetab = Array.make htab_size 0 in
    let free_ent = ref first_code in
    let n_bits = ref min_bits in
    let ent = ref (Char.code (Bytes.get input 0)) in
    let emit_width () =
      if !free_ent > (1 lsl !n_bits) - 1 && !n_bits < max_bits then
        incr n_bits;
      !n_bits
    in
    for i = 1 to n - 1 do
      let c = Char.code (Bytes.unsafe_get input i) in
      let fc = (!ent lsl 8) lor c in
      let hp = ref (hash ~c ~ent:!ent) in
      let disp = if !hp = 0 then 1 else (htab_size - !hp) lor 1 in
      let found = ref false and missing = ref false in
      while (not !found) && not !missing do
        incr probe_count;
        let slot = Array.unsafe_get htab !hp in
        if slot = fc then found := true
        else if slot < 0 then missing := true
        else begin
          hp := !hp - disp;
          if !hp < 0 then hp := !hp + htab_size
        end
      done;
      if !found then ent := Array.unsafe_get codetab !hp
      else begin
        let code = !ent and width = emit_width () in
        if !free_ent < code_limit then begin
          Array.unsafe_set htab !hp fc;
          Array.unsafe_set codetab !hp !free_ent;
          incr free_ent
        end;
        ent := c;
        Bitio.Writer.add_bits_lsb w ~value:code ~count:width
      end
    done;
    let width = emit_width () in
    Bitio.Writer.add_bits_lsb w ~value:!ent ~count:width
  end;
  let out = Bitio.Writer.to_bytes w in
  Obs.Metrics.add m_bytes_in n;
  Obs.Metrics.add m_bytes_out (Bytes.length out);
  if Obs.enabled () then Obs.Metrics.add m_probes !probe_count;
  out

(* Decompression-bomb guard: the 32-bit header length is attacker
   controlled, so it is validated against what the payload could possibly
   expand to before anything is allocated.  Every LZW code is at least
   [min_bits] wide, and after [c] codes the longest dictionary string is
   [c] bytes (each new entry extends a previous string by one byte), so
   [c] codes can emit at most [c * (c + 1) / 2] bytes. *)
(* Largest [c] for which [c * (c + 1)] cannot overflow, i.e. the integer
   square root bound of [2 * max_int].  Derived from [max_int] instead of a
   hard-coded [1 lsl 31] so the guard is correct at any word size (the old
   constant wrapped to a small number on 32-bit OCaml, letting the product
   below overflow). *)
let triangular_cap =
  let fits c = c = 0 || c + 1 <= max_int / c in
  let c = ref (int_of_float (Float.sqrt (2.0 *. float_of_int max_int))) in
  while not (fits !c) do
    decr c
  done;
  while fits (!c + 1) do
    incr c
  done;
  !c

let max_declared_length ~payload_bits =
  let c = payload_bits / min_bits in
  if c > triangular_cap then max_int else c * (c + 1) / 2

let decompress_result data =
  let r = Bitio.Reader.create data in
  Codec_error.protect ~codec:"lzw"
    ~offset:(fun () -> Bitio.Reader.byte_position r)
  @@ fun () ->
  let lo = Bitio.Reader.read_bits_lsb r 16 in
  let hi = Bitio.Reader.read_bits_lsb r 16 in
  let n = (hi lsl 16) lor lo in
  if n > max_declared_length ~payload_bits:(Bitio.Reader.bits_remaining r) then
    failwith "Lzw.decompress: declared length exceeds what the input can encode";
  let out = Buffer.create (max 16 (min n 65536)) in
  if n > 0 then begin
    (* prefix/suffix tables for codes >= 257; codes < 256 are literals. *)
    let prefix = Array.make code_limit 0 in
    let suffix = Array.make code_limit 0 in
    let free_ent = ref first_code in
    let n_bits = ref min_bits in
    let maxcode () = (1 lsl !n_bits) - 1 in
    let read_code () =
      (* The decoder's dictionary is one entry behind the encoder's at
         every read, hence the +1 in the width check. *)
      if !free_ent + 1 > maxcode () && !n_bits < max_bits then incr n_bits;
      Bitio.Reader.read_bits_lsb r !n_bits
    in
    let expand code =
      let rec collect code acc =
        if code >= 0 && code < 256 then Char.chr code :: acc
        else if code >= first_code && code < !free_ent then
          collect prefix.(code) (Char.chr suffix.(code) :: acc)
        else failwith "Lzw.decompress: bad code"
      in
      collect code []
    in
    let code0 = read_code () in
    if code0 > 255 then failwith "Lzw.decompress: bad first code";
    Buffer.add_char out (Char.chr code0);
    let prev = ref code0 in
    while Buffer.length out < n do
      let code = read_code () in
      let chars =
        if code = !free_ent && !free_ent < code_limit then begin
          (* KwKwK: the string is prev's expansion plus its own first
             character. *)
          let prev_chars = expand !prev in
          prev_chars @ [ List.hd prev_chars ]
        end
        else expand code
      in
      List.iter (Buffer.add_char out) chars;
      if !free_ent < code_limit then begin
        prefix.(!free_ent) <- !prev;
        suffix.(!free_ent) <-
          (match chars with
          | c :: _ -> Char.code c
          | [] -> failwith "Lzw.decompress: empty expansion");
        incr free_ent
      end;
      prev := code
    done;
    if Buffer.length out <> n then failwith "Lzw.decompress: length mismatch"
  end;
  Buffer.to_bytes out

let decompress data = Codec_error.unwrap (decompress_result data)
