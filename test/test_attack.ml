open Zipchannel_util
open Zipchannel_attack
module Block_sort = Zipchannel_compress.Block_sort
module Lz77 = Zipchannel_compress.Lz77
module Lzw = Zipchannel_compress.Lzw

let prng () = Prng.create ~seed:0xA77 ()

(* ------------------------------------------------------------------ *)
(* Victim model *)

let test_victim_program_shape () =
  let input = Bytes.of_string "hello world" in
  let program = Victim.program input in
  Alcotest.(check int) "3 events per byte" (3 * 11) (Array.length program);
  (* First iteration touches i = n-1. *)
  let open Zipchannel_trace.Event in
  Alcotest.(check int) "quadrant first" (Victim.quadrant_base + (2 * 10))
    program.(0).addr;
  Alcotest.(check int) "block second" (Victim.block_base + 10) program.(1).addr;
  Alcotest.(check bool) "ftab third is a write" true
    (program.(2).kind = Write)

let test_victim_ftab_addresses_match_indices () =
  let input = Prng.bytes (prng ()) 40 in
  let addrs = Victim.ftab_addresses input in
  let js = Block_sort.ftab_indices input in
  Array.iteri
    (fun k j ->
      Alcotest.(check int) "addr = base + 4j" (Victim.ftab_base + (4 * j))
        addrs.(k))
    js

let test_victim_layout_covers_program () =
  let input = Prng.bytes (prng ()) 64 in
  let layout = Victim.layout ~n:64 in
  Array.iter
    (fun ev ->
      match Zipchannel_trace.Layout.find_addr layout ev.Zipchannel_trace.Event.addr with
      | Some _ -> ()
      | None -> Alcotest.failf "event outside layout: 0x%x" ev.addr)
    (Victim.program input)

(* ------------------------------------------------------------------ *)
(* Recovery: Zlib *)

let test_zlib_direct_bits_exact () =
  let input = Prng.bytes (prng ()) 500 in
  let head_base = 0x7f43da500000 in
  let observed =
    Array.map
      (fun h -> Recovery.zlib_observe ~head_base ~ins_h:h)
      (Lz77.hash_head_trace input)
  in
  let bits = Recovery.zlib_direct_bits ~head_base observed in
  Array.iteri
    (fun k v ->
      Alcotest.(check int) "bits 3-4 of middle byte"
        ((Char.code (Bytes.get input (k + 1)) lsr 3) land 0x3)
        v)
    bits

let test_zlib_lowercase_recovery () =
  let t = prng () in
  let input = Bytes.of_string (Prng.lowercase_string t 300) in
  let head_base = 0x7f43da500000 in
  let observed =
    Array.map
      (fun h -> Recovery.zlib_observe ~head_base ~ins_h:h)
      (Lz77.hash_head_trace input)
  in
  let recovered =
    Recovery.zlib_recover_lowercase ~head_base ~n:300 observed
  in
  (* Everything but the final byte is exact. *)
  Alcotest.(check bool) "all but last byte" true
    (Bytes.sub recovered 0 299 = Bytes.sub input 0 299)

let test_zlib_lowercase_other_class () =
  (* The high-bits assumption is a parameter: uppercase text works with
     high_bits = 0b010. *)
  let input = Bytes.of_string "ATTACKATDAWNBRINGKEYS" in
  let head_base = 0x7f43da500000 in
  let observed =
    Array.map
      (fun h -> Recovery.zlib_observe ~head_base ~ins_h:h)
      (Lz77.hash_head_trace input)
  in
  let n = Bytes.length input in
  let recovered =
    Recovery.zlib_recover_lowercase ~high_bits:0b010 ~head_base ~n observed
  in
  Alcotest.(check bool) "uppercase recovered" true
    (Bytes.sub recovered 0 (n - 1) = Bytes.sub input 0 (n - 1))

(* ------------------------------------------------------------------ *)
(* Recovery: LZW *)

let lzw_first_probe_trace htab_base input =
  let _, probes = Lzw.compress_with_probes input in
  Array.of_list
    (List.filter_map
       (fun p ->
         if p.Lzw.first then
           Some (Recovery.lzw_observe ~htab_base ~hp:p.Lzw.hp)
         else None)
       probes)

let test_lzw_candidates_include_truth () =
  let input = Bytes.of_string "kilroy was here" in
  let htab_base = 0x7f88a0000000 in
  let observed = lzw_first_probe_trace htab_base input in
  let candidates = Recovery.lzw_candidate_firsts ~htab_base observed in
  Alcotest.(check int) "8 candidates" 8 (List.length candidates);
  Alcotest.(check bool) "truth among them" true
    (List.mem (Char.code 'k') candidates)

let test_lzw_recover_with_known_first () =
  let t = prng () in
  let input = Bytes.of_string (Lipsum.paragraph t) in
  let htab_base = 0x7f88a0000000 in
  let observed = lzw_first_probe_trace htab_base input in
  let recovered =
    Recovery.lzw_recover ~htab_base ~first:(Char.code (Bytes.get input 0))
      observed
  in
  Alcotest.(check bool) "exact" true (Bytes.equal recovered input)

let test_lzw_consistency_separates_candidates () =
  let input = Bytes.of_string "mississippi river runs deep and wide" in
  let htab_base = 0x7f88a0000000 in
  let observed = lzw_first_probe_trace htab_base input in
  let truth = Char.code 'm' in
  let good = Recovery.lzw_consistency ~htab_base ~first:truth observed in
  Alcotest.(check (float 1e-9)) "correct first is fully consistent" 1.0 good;
  (* A candidate wrong in an observable bit (3 and up) is caught
     immediately; the low 3 bits are below line granularity and remain the
     paper's 2^3 ambiguity. *)
  let wrong = Recovery.lzw_consistency ~htab_base ~first:(truth lxor 0x18) observed in
  Alcotest.(check bool) "observably-wrong first scores lower" true (wrong < good)

let test_lzw_recover_auto () =
  let t = prng () in
  let input = Bytes.of_string (Lipsum.repetitive_file t ~level:3 ~size:600) in
  let htab_base = 0x7f88a0000000 in
  let observed = lzw_first_probe_trace htab_base input in
  let recovered = Recovery.lzw_recover_auto ~htab_base observed in
  Alcotest.(check bool) "suffix fully recovered" true
    (Bytes.sub recovered 1 599 = Bytes.sub input 1 599);
  Alcotest.(check int) "first byte top 5 bits"
    (Char.code (Bytes.get input 0) land 0xf8)
    (Char.code (Bytes.get recovered 0) land 0xf8)

let test_lzw_recover_random_data () =
  let t = prng () in
  let input = Prng.bytes t 1500 in
  let htab_base = 0x7f88a0000000 in
  let observed = lzw_first_probe_trace htab_base input in
  let recovered = Recovery.lzw_recover_auto ~htab_base observed in
  (* Everything after byte 0 is exact; byte 0 keeps its observable top 5
     bits but its low 3 bits are ambiguous for random data. *)
  Alcotest.(check bool) "suffix exact" true
    (Bytes.sub recovered 1 1499 = Bytes.sub input 1 1499);
  Alcotest.(check int) "first byte top 5 bits"
    (Char.code (Bytes.get input 0) land 0xf8)
    (Char.code (Bytes.get recovered 0) land 0xf8)

(* ------------------------------------------------------------------ *)
(* Recovery: Bzip2 *)

let bzip2_clean_trace ftab_base input =
  Array.map
    (fun j -> Some (Recovery.bzip2_observe ~ftab_base ~j))
    (Block_sort.ftab_indices input)

let test_bzip2_window_contains_truth () =
  let ftab_base = 0x7ff944c40030 in
  for j = 0 to 2000 do
    let obs = Recovery.bzip2_observe ~ftab_base ~j in
    let jmin, jmax = Recovery.bzip2_window ~ftab_base obs in
    if not (j >= jmin && j <= jmax) then
      Alcotest.failf "j=%d outside window [%d,%d]" j jmin jmax
  done

let test_bzip2_recover_clean_trace () =
  let t = prng () in
  let input = Prng.bytes t 800 in
  let ftab_base = 0x7ff944c40030 in
  let recovered =
    Recovery.bzip2_recover ~ftab_base ~n:800 (bzip2_clean_trace ftab_base input)
  in
  Alcotest.(check bool) "perfect on clean trace" true (Bytes.equal recovered input)

let test_bzip2_recover_aligned_ftab () =
  (* With a line-aligned ftab there is no off-by-one ambiguity at all. *)
  let t = prng () in
  let input = Prng.bytes t 500 in
  let ftab_base = 0x7ff944c40000 in
  let recovered =
    Recovery.bzip2_recover ~ftab_base ~n:500 (bzip2_clean_trace ftab_base input)
  in
  Alcotest.(check bool) "perfect" true (Bytes.equal recovered input)

let test_bzip2_recover_with_losses () =
  let t = prng () in
  let input = Prng.bytes t 600 in
  let ftab_base = 0x7ff944c40030 in
  let trace = bzip2_clean_trace ftab_base input in
  (* Drop 5% of readings. *)
  Array.iteri (fun k _ -> if Prng.int t 20 = 0 then trace.(k) <- None) trace;
  let recovered = Recovery.bzip2_recover ~ftab_base ~n:600 trace in
  Alcotest.(check bool) "still above 97% of bits" true
    (Stats.bit_accuracy recovered input > 0.97)

let test_bzip2_recover_with_spurious_candidates () =
  let t = prng () in
  let input = Prng.bytes t 600 in
  let ftab_base = 0x7ff944c40030 in
  let candidates =
    Array.map
      (fun j ->
        let true_obs = Recovery.bzip2_observe ~ftab_base ~j in
        (* 10% of readings come with one spurious extra line. *)
        if Prng.int t 10 = 0 then
          [ true_obs; Recovery.bzip2_observe ~ftab_base ~j:(Prng.int t 0x10000) ]
        else [ true_obs ])
      (Block_sort.ftab_indices input)
  in
  let recovered =
    Recovery.bzip2_recover_candidates ~ftab_base ~n:600 candidates
  in
  Alcotest.(check bool) "chain disambiguates" true
    (Stats.bit_accuracy recovered input > 0.99)

let test_bzip2_recover_empty_trace () =
  let recovered =
    Recovery.bzip2_recover ~ftab_base:0x1000 ~n:4 [| None; None; None; None |]
  in
  Alcotest.(check int) "length preserved" 4 (Bytes.length recovered)

let qcheck_bzip2_recover_roundtrip =
  QCheck.Test.make ~name:"bzip2 recovery inverts clean traces" ~count:50
    QCheck.(string_of_size QCheck.Gen.(10 -- 300))
    (fun s ->
      let input = Bytes.of_string s in
      let ftab_base = 0x7ff944c40030 in
      let recovered =
        Recovery.bzip2_recover ~ftab_base ~n:(Bytes.length input)
          (bzip2_clean_trace ftab_base input)
      in
      Bytes.equal recovered input)

let qcheck_lzw_recover_roundtrip =
  QCheck.Test.make ~name:"lzw recovery inverts first-probe traces" ~count:50
    QCheck.(string_of_size QCheck.Gen.(2 -- 300))
    (fun s ->
      let input = Bytes.of_string s in
      let htab_base = 0x7f88a0000000 in
      let observed = lzw_first_probe_trace htab_base input in
      let recovered =
        Recovery.lzw_recover ~htab_base
          ~first:(Char.code (Bytes.get input 0))
          observed
      in
      Bytes.equal recovered input)

(* ------------------------------------------------------------------ *)
(* Noise *)

let test_noise_transition_targets_fixed_sets () =
  let cache = Zipchannel_cache.Cache.create Zipchannel_cache.Cache.default_config in
  let noise = Noise.create ~cache ~prng:(prng ()) () in
  let sets = Noise.transition_sets noise in
  Alcotest.(check bool) "bounded working set" true
    (List.length sets <= Noise.default_config.Noise.transition_lines);
  Noise.on_transition noise;
  (* After a transition only System-owned lines appear, all within the
     working set's sets. *)
  List.iter
    (fun set ->
      let n = Zipchannel_cache.Cache.owner_in_set cache ~set Zipchannel_cache.Cache.System in
      Alcotest.(check bool) "at most the working set" true (n >= 0))
    sets

let test_noise_background_uses_cos () =
  let cache = Zipchannel_cache.Cache.create Zipchannel_cache.Cache.small_config in
  Zipchannel_cache.Cache.set_cat_mask cache ~cos:0 ~mask:0b0001;
  Zipchannel_cache.Cache.set_cat_mask cache ~cos:1 ~mask:0b1110;
  (* Pin an attacker line in way 0 of every set, then hammer background
     traffic in cos 1: the attacker lines must survive. *)
  let attacker_addr = 0x0 in
  ignore (Zipchannel_cache.Cache.access cache ~cos:0
            ~owner:Zipchannel_cache.Cache.Attacker attacker_addr);
  let noise =
    Noise.create
      ~config:{ Noise.default_config with Noise.background_per_window = 2000 }
      ~cache ~prng:(prng ()) ()
  in
  Noise.background noise ~cos:1;
  Alcotest.(check bool) "CAT shields way 0" true
    (Zipchannel_cache.Cache.is_cached cache attacker_addr)

(* ------------------------------------------------------------------ *)
(* End-to-end SGX attack *)

let test_sgx_attack_full_accuracy () =
  let input = Prng.bytes (prng ()) 1500 in
  let r = Sgx_attack.run input in
  Alcotest.(check bool) "paper-level accuracy (>99% of bits)" true
    (r.Sgx_attack.bit_accuracy > 0.99);
  Alcotest.(check int) "3 faults per iteration" (3 * 1500) r.faults

let test_sgx_attack_empty_input () =
  let r = Sgx_attack.run Bytes.empty in
  Alcotest.(check int) "empty recovered" 0 (Bytes.length r.Sgx_attack.recovered)

let test_sgx_attack_deterministic () =
  let input = Prng.bytes (prng ()) 300 in
  let a = Sgx_attack.run input and b = Sgx_attack.run input in
  Alcotest.(check bool) "same recovery" true
    (Bytes.equal a.Sgx_attack.recovered b.Sgx_attack.recovered)

let test_sgx_attack_ablation_ordering () =
  let input = Prng.bytes (prng ()) 1200 in
  let d = Sgx_attack.default_config in
  let full = Sgx_attack.run ~config:d input in
  let no_cat =
    Sgx_attack.run ~config:{ d with Sgx_attack.use_cat = false } input
  in
  Alcotest.(check bool) "CAT helps" true
    (full.Sgx_attack.bit_accuracy >= no_cat.Sgx_attack.bit_accuracy);
  Alcotest.(check bool) "no-CAT still leaks most bits" true
    (no_cat.Sgx_attack.bit_accuracy > 0.75)

let test_sgx_attack_noiseless_is_perfect () =
  (* Without timing noise, background traffic or transition pollution the
     channel is exact except for the inherent line-granularity ambiguity,
     which the chain recovery resolves completely. *)
  let input = Prng.bytes (prng ()) 700 in
  let config =
    {
      Sgx_attack.default_config with
      Sgx_attack.timing = Zipchannel_cache.Timing.noiseless;
      background_noise = false;
      noise_config =
        { Noise.default_config with Noise.transition_touch_prob = 0.0 };
    }
  in
  let r = Sgx_attack.run ~config input in
  Alcotest.(check bool) "perfect recovery" true
    (Bytes.equal r.Sgx_attack.recovered input)

(* ------------------------------------------------------------------ *)
(* Fingerprinting *)

let test_fingerprint_timeline_structure () =
  let t = prng () in
  let random = Prng.bytes t 25_000 in
  let segs = Fingerprint.timeline random in
  (* Random data: two full main-sorted blocks plus a short fallback one. *)
  let funcs = List.map (fun s -> s.Block_sort.func) segs in
  Alcotest.(check (list bool)) "main main fallback"
    [ true; true; false ]
    (List.map (fun f -> f = Block_sort.Main_sort) funcs)

let test_fingerprint_collect_sees_activity () =
  let t = prng () in
  let input = Prng.bytes t 15_000 in
  let main_trace, fallback_trace = Fingerprint.collect ~prng:t input in
  Alcotest.(check bool) "mainSort observed" true
    (Array.exists (fun b -> b) main_trace);
  Alcotest.(check bool) "fallbackSort observed (short last block)" true
    (Array.exists (fun b -> b) fallback_trace)

let test_fingerprint_silent_trace_encodes_timeout () =
  let f = Fingerprint.features (Array.make 10 false, Array.make 10 false) in
  Array.iter
    (fun v -> Alcotest.(check (float 1e-12)) "timeout value 2.0" 2.0 v)
    f

let test_fingerprint_features_dimension () =
  let t = prng () in
  let input = Prng.bytes t 12_000 in
  let f = Fingerprint.collect_features ~prng:t input in
  Alcotest.(check int) "2 x bins"
    (2 * Fingerprint.default_config.Fingerprint.bins)
    (Array.length f)

let test_corpus_shapes () =
  let t = prng () in
  let brotli = Corpus.brotli_like t in
  Alcotest.(check int) "21 files" 21 (List.length brotli);
  let names = List.map fst brotli in
  Alcotest.(check int) "distinct names" 21
    (List.length (List.sort_uniq compare names));
  Alcotest.(check bool) "has the x file" true
    (List.exists (fun (n, d) -> n = "x" && Bytes.length d = 1) brotli);
  let rep = Corpus.repetitiveness t in
  Alcotest.(check int) "5 files" 5 (List.length rep);
  List.iter
    (fun (_, d) -> Alcotest.(check int) "20000 bytes" 20_000 (Bytes.length d))
    rep

(* ------------------------------------------------------------------ *)
(* LZW SGX attack *)

let test_lzw_sgx_program_shape () =
  let input = Bytes.of_string "abcab" in
  let program = Lzw_sgx_attack.program input in
  (* input[0] + per further byte: one read, >= 1 probe, insert on miss. *)
  Alcotest.(check bool) "enough events" true (Array.length program >= 1 + (4 * 2));
  let open Zipchannel_trace.Event in
  Alcotest.(check int) "starts at input[0]" Lzw_sgx_attack.input_base
    program.(0).addr;
  Alcotest.(check bool) "has htab probes" true
    (Array.exists (fun e -> e.label = "htab[hp]") program)

let test_lzw_sgx_attack_text () =
  let t = prng () in
  let input = Bytes.of_string (Lipsum.repetitive_file t ~level:4 ~size:1200) in
  let r = Lzw_sgx_attack.run input in
  Alcotest.(check bool) "full text extraction" true
    (r.Lzw_sgx_attack.byte_accuracy > 0.995);
  Alcotest.(check int) "one lookup per byte" 1199 r.lookups

let test_lzw_sgx_attack_random () =
  let t = prng () in
  let input = Prng.bytes t 1200 in
  let r = Lzw_sgx_attack.run input in
  Alcotest.(check bool) "random data extraction" true
    (r.Lzw_sgx_attack.bit_accuracy > 0.99)

let test_lzw_sgx_attack_edges () =
  Alcotest.(check int) "empty" 0
    (Bytes.length (Lzw_sgx_attack.run Bytes.empty).Lzw_sgx_attack.recovered);
  Alcotest.(check int) "single byte" 1
    (Bytes.length (Lzw_sgx_attack.run (Bytes.of_string "x")).Lzw_sgx_attack.recovered)

let test_lzw_recover_candidates_with_losses () =
  (* Clean trace with some readings dropped or polluted with a spurious
     candidate: repair must keep the suffix intact. *)
  let t = prng () in
  let input = Prng.bytes t 800 in
  let htab_base = 0x720000000000 in
  let _, probes = Lzw.compress_with_probes input in
  let observed =
    Array.of_list
      (List.filter_map
         (fun p ->
           if p.Lzw.first then
             Some (Recovery.lzw_observe ~htab_base ~hp:p.Lzw.hp)
           else None)
         probes)
  in
  let candidates =
    Array.map
      (fun obs ->
        if Prng.int t 50 = 0 then [] (* lost *)
        else if Prng.int t 25 = 0 then
          [ obs; Recovery.lzw_observe ~htab_base ~hp:(Prng.int t 131072) ]
        else [ obs ])
      observed
  in
  let recovered = Recovery.lzw_recover_candidates_auto ~htab_base candidates in
  Alcotest.(check bool) "repairable" true
    (Stats.bit_accuracy recovered input > 0.98)

(* ------------------------------------------------------------------ *)
(* Zlib SGX attack *)

let test_zlib_sgx_program_shape () =
  let input = Bytes.of_string "abcdef" in
  let program = Zlib_sgx_attack.program input in
  (* 2 seed reads + (read, store) per window. *)
  Alcotest.(check int) "event count" (2 + (2 * 4)) (Array.length program);
  let open Zipchannel_trace.Event in
  Alcotest.(check bool) "stores into head" true
    (Array.exists
       (fun e -> e.kind = Write && e.addr >= Zlib_sgx_attack.head_base)
       program)

let test_zlib_sgx_attack_lowercase () =
  let t = prng () in
  let input = Bytes.of_string (Prng.lowercase_string t 1000) in
  let r = Zlib_sgx_attack.run input in
  Alcotest.(check bool) "near-full recovery" true
    (r.Zlib_sgx_attack.byte_accuracy > 0.99)

let test_zlib_sgx_attack_direct_bits () =
  let t = prng () in
  let input = Prng.bytes t 1000 in
  let r = Zlib_sgx_attack.run input in
  Alcotest.(check bool) "25% unconditional leak read" true
    (r.Zlib_sgx_attack.direct_bits_accuracy > 0.98)

let test_zlib_sgx_attack_edges () =
  Alcotest.(check int) "empty" 0
    (Bytes.length (Zlib_sgx_attack.run Bytes.empty).Zlib_sgx_attack.recovered);
  Alcotest.(check int) "two bytes" 2
    (Bytes.length (Zlib_sgx_attack.run (Bytes.of_string "ab")).Zlib_sgx_attack.recovered)

let test_zlib_resolve_candidates () =
  let t = prng () in
  let input = Prng.bytes t 400 in
  let head_base = Zlib_sgx_attack.head_base in
  let truth =
    Array.map
      (fun h -> Recovery.zlib_observe ~head_base ~ins_h:h)
      (Lz77.hash_head_trace input)
  in
  let noisy =
    Array.map
      (fun obs ->
        if Prng.int t 12 = 0 then
          [ obs; Recovery.zlib_observe ~head_base ~ins_h:(Prng.int t 0x8000) ]
        else [ obs ])
      truth
  in
  let resolved = Recovery.zlib_resolve_candidates ~head_base noisy in
  let ok = ref 0 in
  Array.iteri
    (fun k r -> if r = Some truth.(k) then incr ok)
    resolved;
  Alcotest.(check bool) "overlap redundancy resolves nearly all" true
    (float_of_int !ok /. float_of_int (Array.length truth) > 0.98)

(* ------------------------------------------------------------------ *)
(* Timer-stepping baseline *)

let test_timer_attack_runs () =
  let input = Prng.bytes (prng ()) 250 in
  let r = Timer_attack.run input in
  Alcotest.(check int) "recovers a full-length guess" 250
    (Bytes.length r.Timer_attack.recovered);
  Alcotest.(check bool) "took interrupts" true (r.Timer_attack.windows > 0)

let test_timer_attack_periodic_beats_jittery () =
  let input = Prng.bytes (prng ()) 300 in
  let run jitter =
    Timer_attack.run
      ~config:
        { Timer_attack.default_config with Timer_attack.interval_jitter = jitter }
      input
  in
  let periodic = run 0.0 and jittery = run 1.5 in
  Alcotest.(check bool) "periodic timer is informative" true
    (periodic.Timer_attack.bit_accuracy > 0.75);
  Alcotest.(check bool) "jitter degrades the channel" true
    (jittery.Timer_attack.bit_accuracy < periodic.Timer_attack.bit_accuracy)

let test_timer_attack_below_controlled_channel () =
  let input = Prng.bytes (prng ()) 300 in
  let timer = Timer_attack.run input in
  let ctrl = Sgx_attack.run input in
  Alcotest.(check bool) "controlled channel wins" true
    (ctrl.Sgx_attack.bit_accuracy > timer.Timer_attack.bit_accuracy)

(* ------------------------------------------------------------------ *)
(* Memory-compression oracle (E19) *)

let test_memcomp_page_separates_truth () =
  (* A page reflecting the true secret byte must compress strictly
     smaller than one reflecting a wrong guess: the "key=<byte>" probe
     extends an LZ4 match into the secret marker. *)
  let page = Memcomp.Page.create ~seed:11 () in
  let secret = Memcomp.Page.secret page in
  let truth = String.make 1 secret.[0] in
  let wrong = if truth = "0" then "1" else "0" in
  let size g =
    Bytes.length
      (Zipchannel_compress.Lz4.compress
         (Memcomp.Page.render page ~guess:g ~pad:0))
  in
  Alcotest.(check bool) "true guess compresses smaller" true
    (size truth < size wrong)

let test_memcomp_ratio_recovery () =
  let r = Memcomp.run ~seed:7 ~secret_len:8 ~oracle:Memcomp.Ratio () in
  Alcotest.(check int) "all positions probed" 8 r.Memcomp.positions;
  Alcotest.(check bool) "recovers >= 75% of bytes" true
    (r.Memcomp.per_byte_rate >= 0.75);
  Alcotest.(check int) "recovered string is full length" 8
    (String.length r.Memcomp.recovered)

let test_memcomp_timing_recovery () =
  let r = Memcomp.run ~seed:7 ~secret_len:8 ~oracle:Memcomp.Timing () in
  Alcotest.(check bool) "noisy oracle still recovers >= 75%" true
    (r.Memcomp.per_byte_rate >= 0.75);
  Alcotest.(check bool) "channel carries information" true
    (r.Memcomp.capacity_bits > 0.)

let test_memcomp_jobs_invariant () =
  (* Probe noise is keyed by probe coordinates, not a shared stream, so
     the whole result record is identical at any fan-out. *)
  let run jobs =
    Memcomp.run ~seed:3 ~secret_len:4 ~oracle:Memcomp.Timing ~jobs ()
  in
  Alcotest.(check bool) "jobs 1 = jobs 4" true (run 1 = run 4)

let test_memcomp_seed_changes_secret () =
  let secret seed = Memcomp.Page.secret (Memcomp.Page.create ~seed ()) in
  Alcotest.(check bool) "different seeds, different secrets" false
    (secret 1 = secret 2);
  Alcotest.(check bool) "same seed, same secret" true (secret 5 = secret 5)

let test_corpus_deterministic () =
  let a = Corpus.repetitiveness (Prng.create ~seed:5 ()) in
  let b = Corpus.repetitiveness (Prng.create ~seed:5 ()) in
  List.iter2
    (fun (_, x) (_, y) ->
      Alcotest.(check bool) "same contents" true (Bytes.equal x y))
    a b

let suite =
  ( "attack",
    [
      Alcotest.test_case "victim program shape" `Quick test_victim_program_shape;
      Alcotest.test_case "victim ftab addresses" `Quick test_victim_ftab_addresses_match_indices;
      Alcotest.test_case "victim layout" `Quick test_victim_layout_covers_program;
      Alcotest.test_case "zlib direct bits" `Quick test_zlib_direct_bits_exact;
      Alcotest.test_case "zlib lowercase recovery" `Quick test_zlib_lowercase_recovery;
      Alcotest.test_case "zlib uppercase recovery" `Quick test_zlib_lowercase_other_class;
      Alcotest.test_case "lzw candidates" `Quick test_lzw_candidates_include_truth;
      Alcotest.test_case "lzw recover known first" `Quick test_lzw_recover_with_known_first;
      Alcotest.test_case "lzw consistency" `Quick test_lzw_consistency_separates_candidates;
      Alcotest.test_case "lzw recover auto" `Quick test_lzw_recover_auto;
      Alcotest.test_case "lzw recover random" `Quick test_lzw_recover_random_data;
      Alcotest.test_case "bzip2 window" `Quick test_bzip2_window_contains_truth;
      Alcotest.test_case "bzip2 recover clean" `Quick test_bzip2_recover_clean_trace;
      Alcotest.test_case "bzip2 recover aligned" `Quick test_bzip2_recover_aligned_ftab;
      Alcotest.test_case "bzip2 recover losses" `Quick test_bzip2_recover_with_losses;
      Alcotest.test_case "bzip2 recover spurious" `Quick test_bzip2_recover_with_spurious_candidates;
      Alcotest.test_case "bzip2 recover empty" `Quick test_bzip2_recover_empty_trace;
      QCheck_alcotest.to_alcotest qcheck_bzip2_recover_roundtrip;
      QCheck_alcotest.to_alcotest qcheck_lzw_recover_roundtrip;
      Alcotest.test_case "noise transition sets" `Quick test_noise_transition_targets_fixed_sets;
      Alcotest.test_case "noise background cos" `Quick test_noise_background_uses_cos;
      Alcotest.test_case "sgx attack accuracy" `Quick test_sgx_attack_full_accuracy;
      Alcotest.test_case "sgx attack empty" `Quick test_sgx_attack_empty_input;
      Alcotest.test_case "sgx attack deterministic" `Quick test_sgx_attack_deterministic;
      Alcotest.test_case "sgx ablation ordering" `Quick test_sgx_attack_ablation_ordering;
      Alcotest.test_case "sgx noiseless perfect" `Quick test_sgx_attack_noiseless_is_perfect;
      Alcotest.test_case "fingerprint timeline" `Quick test_fingerprint_timeline_structure;
      Alcotest.test_case "fingerprint activity" `Quick test_fingerprint_collect_sees_activity;
      Alcotest.test_case "fingerprint timeout" `Quick test_fingerprint_silent_trace_encodes_timeout;
      Alcotest.test_case "fingerprint features" `Quick test_fingerprint_features_dimension;
      Alcotest.test_case "corpus shapes" `Quick test_corpus_shapes;
      Alcotest.test_case "corpus deterministic" `Quick test_corpus_deterministic;
      Alcotest.test_case "zlib sgx program" `Quick test_zlib_sgx_program_shape;
      Alcotest.test_case "zlib sgx lowercase" `Quick test_zlib_sgx_attack_lowercase;
      Alcotest.test_case "zlib sgx direct bits" `Quick test_zlib_sgx_attack_direct_bits;
      Alcotest.test_case "zlib sgx edges" `Quick test_zlib_sgx_attack_edges;
      Alcotest.test_case "zlib resolve candidates" `Quick test_zlib_resolve_candidates;
      Alcotest.test_case "lzw sgx program" `Quick test_lzw_sgx_program_shape;
      Alcotest.test_case "lzw sgx text" `Quick test_lzw_sgx_attack_text;
      Alcotest.test_case "lzw sgx random" `Quick test_lzw_sgx_attack_random;
      Alcotest.test_case "lzw sgx edges" `Quick test_lzw_sgx_attack_edges;
      Alcotest.test_case "lzw candidates repair" `Quick
        test_lzw_recover_candidates_with_losses;
      Alcotest.test_case "timer attack runs" `Quick test_timer_attack_runs;
      Alcotest.test_case "timer periodic vs jittery" `Quick
        test_timer_attack_periodic_beats_jittery;
      Alcotest.test_case "timer below controlled channel" `Quick
        test_timer_attack_below_controlled_channel;
      Alcotest.test_case "memcomp page separates truth" `Quick
        test_memcomp_page_separates_truth;
      Alcotest.test_case "memcomp ratio recovery" `Quick
        test_memcomp_ratio_recovery;
      Alcotest.test_case "memcomp timing recovery" `Quick
        test_memcomp_timing_recovery;
      Alcotest.test_case "memcomp jobs invariant" `Quick
        test_memcomp_jobs_invariant;
      Alcotest.test_case "memcomp seed changes secret" `Quick
        test_memcomp_seed_changes_secret;
    ] )
