type t = {
  cache : Cache.t;
  timing : Timing.t;
  prng : Zipchannel_util.Prng.t;
  cos : int;
  addr_memo : (int, int array) Hashtbl.t; (* set -> eviction buffer lines *)
  (* Telemetry: set-granular prime/probe rounds and lines measured as
     evicted, maintained unconditionally, published to Obs on demand. *)
  mutable primes : int;
  mutable probes : int;
  mutable probe_evictions : int;
}

let create ?(timing = Timing.default) ?(cos = 0) ~cache ~prng () =
  {
    cache;
    timing;
    prng;
    cos;
    addr_memo = Hashtbl.create 256;
    primes = 0;
    probes = 0;
    probe_evictions = 0;
  }

let cos t = t.cos

let allowed_ways t =
  let mask = Cache.cat_mask t.cache ~cos:t.cos in
  let ways = (Cache.config t.cache).Cache.ways in
  let count = ref 0 in
  for w = 0 to ways - 1 do
    if mask land (1 lsl w) <> 0 then incr count
  done;
  !count

(* The attacker's eviction buffer: the k-th line of the buffer that maps
   to [set].  Finding congruent addresses scans the address space, so the
   full way-set is computed once per set and memoized. *)
let buffer t ~set ~count =
  match Hashtbl.find_opt t.addr_memo set with
  | Some lines when Array.length lines >= count -> lines
  | _ ->
      let lines = Cache.addrs_for_set t.cache ~set ~count in
      Hashtbl.replace t.addr_memo set lines;
      lines

let eviction_lines t ~set =
  let n = allowed_ways t in
  let lines = buffer t ~set ~count:n in
  if Array.length lines = n then lines else Array.sub lines 0 n

let prime_lines t lines =
  t.primes <- t.primes + 1;
  ignore (Cache.access_many t.cache ~cos:t.cos ~owner:Attacker lines)

(* Probe a [lo, hi) range of a flat line array.  The per-line loop stays
   here (not in [Cache.access_many]) because every access is followed by
   a timing draw from the attacker's PRNG, and the draw order is part of
   the simulated protocol. *)
let probe_range t lines lo hi =
  t.probes <- t.probes + 1;
  let evicted = ref 0 in
  for seq = lo to hi - 1 do
    (* One access both observes the hit/miss and refills the line, so the
       probe doubles as a re-prime; the timing draw happens after the
       access but consumes the same PRNG stream as measuring first
       would. *)
    let hit =
      Cache.access t.cache ~cos:t.cos ~owner:Attacker
        (Array.unsafe_get lines seq)
    in
    if not (Timing.measure t.timing t.prng ~hit) then incr evicted
  done;
  t.probe_evictions <- t.probe_evictions + !evicted;
  !evicted

let probe_lines t lines = probe_range t lines 0 (Array.length lines)

type stats = { primes : int; probes : int; probe_evictions : int }

let stats (t : t) : stats =
  { primes = t.primes; probes = t.probes; probe_evictions = t.probe_evictions }

module Obs = Zipchannel_obs.Obs

let m_primes = Obs.Metrics.counter "prime_probe.primes"
let m_probes = Obs.Metrics.counter "prime_probe.probes"
let m_probe_evictions = Obs.Metrics.counter "prime_probe.evictions"

let observe_metrics (t : t) =
  if Obs.enabled () then begin
    Obs.Metrics.add m_primes t.primes;
    Obs.Metrics.add m_probes t.probes;
    Obs.Metrics.add m_probe_evictions t.probe_evictions;
    Cache.observe_metrics t.cache
  end

let prime t ~set = prime_lines t (eviction_lines t ~set)

let probe t ~set = probe_lines t (eviction_lines t ~set)

let probe_hit t ~set = probe t ~set > 0

let prime_sets t ~sets = List.iter (fun set -> prime t ~set) sets

let probe_sets t ~sets = List.map (fun set -> (set, probe t ~set)) sets

(* A monitoring plan: the eviction buffers of a fixed set list laid out
   in one flat address array, so the per-window prime/probe sweep is a
   tight loop with no per-set memo lookups or list traffic. *)
type plan = {
  p_sets : int array;
  p_starts : int array; (* length n_sets + 1; set k owns [starts.(k), starts.(k+1)) *)
  p_lines : int array;
}

let plan t ~sets =
  let n = Array.length sets in
  let starts = Array.make (n + 1) 0 in
  let buffers = Array.map (fun set -> eviction_lines t ~set) sets in
  for k = 0 to n - 1 do
    starts.(k + 1) <- starts.(k) + Array.length buffers.(k)
  done;
  let lines = Array.make starts.(n) 0 in
  Array.iteri (fun k b -> Array.blit b 0 lines starts.(k) (Array.length b)) buffers;
  { p_sets = Array.copy sets; p_starts = starts; p_lines = lines }

let plan_sets plan = plan.p_sets

let prime_plan (t : t) plan =
  for k = 0 to Array.length plan.p_sets - 1 do
    t.primes <- t.primes + 1;
    for seq = plan.p_starts.(k) to plan.p_starts.(k + 1) - 1 do
      ignore
        (Cache.access t.cache ~cos:t.cos ~owner:Attacker
           (Array.unsafe_get plan.p_lines seq))
    done
  done

let probe_plan t plan ~evicted =
  let n = Array.length plan.p_sets in
  if Array.length evicted < n then invalid_arg "Prime_probe.probe_plan: evicted";
  for k = 0 to n - 1 do
    evicted.(k) <- probe_range t plan.p_lines plan.p_starts.(k) plan.p_starts.(k + 1)
  done
