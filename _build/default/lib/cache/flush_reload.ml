type t = { cache : Cache.t; timing : Timing.t; prng : Zipchannel_util.Prng.t }

let create ?(timing = Timing.default) ~cache ~prng () = { cache; timing; prng }

let flush t addr = Cache.flush t.cache addr

let reload t addr =
  let hit = Cache.is_cached t.cache addr in
  let observed = Timing.measure t.timing t.prng ~hit in
  (* The measuring load itself fills the cache. *)
  ignore (Cache.access t.cache ~owner:Attacker addr);
  observed

let round t addr =
  let r = reload t addr in
  flush t addr;
  r
