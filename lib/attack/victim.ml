open Zipchannel_trace
module Block_sort = Zipchannel_compress.Block_sort

let block_base = 0x710000000000

let quadrant_base = 0x710000100000

let ftab_base = 0x710000200030

let layout ~n =
  Layout.create
    [
      { Layout.name = "block"; base = block_base; size = max 1 n; elem_size = 1 };
      {
        Layout.name = "quadrant";
        base = quadrant_base;
        size = max 2 (2 * n);
        elem_size = 2;
      };
      {
        Layout.name = "ftab";
        base = ftab_base;
        size = 4 * Block_sort.ftab_size;
        elem_size = 4;
      };
    ]

let program input =
  let n = Bytes.length input in
  let js = Block_sort.ftab_indices input in
  let filler = Event.read ~addr:0 ~size:1 () in
  let events = Array.make (3 * n) filler in
  for k = 0 to n - 1 do
    let i = n - 1 - k in
    events.(3 * k) <-
      Event.write ~label:"quadrant[i]=0" ~addr:(quadrant_base + (2 * i))
        ~size:2 ();
    events.((3 * k) + 1) <-
      Event.read ~label:"block[i]" ~addr:(block_base + i) ~size:1 ();
    events.((3 * k) + 2) <-
      Event.write ~label:"ftab[j]++" ~addr:(ftab_base + (4 * js.(k))) ~size:4 ()
  done;
  events

let ftab_addresses input =
  Array.map (fun j -> ftab_base + (4 * j)) (Block_sort.ftab_indices input)
