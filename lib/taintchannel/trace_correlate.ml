type finding = {
  location : string;
  varying_positions : int;
  line_varying_positions : int;
}

(* Group one run's address trace by location, keeping per-location
   order.  Scans the engine's flat log arrays directly — no per-entry
   pair or cons is built for what is the tool's biggest input. *)
let by_location (locs, addrs, len) =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  for i = 0 to len - 1 do
    let loc = Array.unsafe_get locs i and addr = Array.unsafe_get addrs i in
    match Hashtbl.find_opt tbl loc with
    | Some cell -> cell := addr :: !cell
    | None ->
        Hashtbl.add tbl loc (ref [ addr ]);
        order := loc :: !order
  done;
  List.rev_map
    (fun loc -> (loc, Array.of_list (List.rev !(Hashtbl.find tbl loc))))
    !order

let analyze ~run ~inputs =
  (match inputs with
  | [] | [ _ ] -> invalid_arg "Trace_correlate.analyze: need >= 2 inputs"
  | _ -> ());
  let traces =
    List.map (fun input -> by_location (Engine.trace_arrays (run input))) inputs
  in
  let reference = List.hd traces and others = List.tl traces in
  let findings =
    List.filter_map
      (fun (loc, ref_addrs) ->
        let varying = ref 0 and line_varying = ref 0 in
        List.iter
          (fun trace ->
            match List.assoc_opt loc trace with
            | None -> ()
            | Some addrs ->
                let n = min (Array.length ref_addrs) (Array.length addrs) in
                for i = 0 to n - 1 do
                  if ref_addrs.(i) <> addrs.(i) then begin
                    incr varying;
                    if ref_addrs.(i) lsr 6 <> addrs.(i) lsr 6 then
                      incr line_varying
                  end
                done)
          others;
        if !varying = 0 then None
        else
          Some
            {
              location = loc;
              varying_positions = !varying;
              line_varying_positions = !line_varying;
            })
      reference
  in
  List.sort
    (fun a b -> compare b.varying_positions a.varying_positions)
    findings

let pp_finding ppf f =
  Format.fprintf ppf
    "%s: address varies with input at %d positions (%d at line granularity)"
    f.location f.varying_positions f.line_varying_positions
