lib/sgx/enclave.ml: Array Page_table Zipchannel_cache Zipchannel_trace
