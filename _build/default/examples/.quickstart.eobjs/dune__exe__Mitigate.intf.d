examples/mitigate.mli:
